"""Virtual-clock autoscaling of the executor fleet.

The :class:`Autoscaler` is evaluated on periodic decision-plane tick
events (every ``interval_ms`` of *virtual* time), so scale decisions are
a pure function of the decision sequence — no wall-clock, no data-plane
feedback — and replay byte-identically with the rest of the log.

Scale-up triggers on pressure: queue depth per active executor above
``queue_depth_per_executor``, or the modeled backlog drain time eroding
SLO headroom (backlog > ``slo_headroom`` x the workload's SLO).  A new
executor is *cold*: it accepts work only after ``coldstart_ms`` and
starts with an empty warm set, so scaling is never modeled as free.

Scale-down is drain-only: an executor must sit idle for
``idle_evals`` consecutive evaluations before it is retired, and the
fleet never shrinks below ``min_executors``.  At most one executor is
added and one retired per tick — deliberate hysteresis against flapping.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds of the fleet autoscaler (virtual-clock units)."""

    min_executors: int = 1
    max_executors: int = 8
    #: Evaluation period on the virtual clock.
    interval_ms: float = 250.0
    #: Scale up when waiting requests per active executor exceed this.
    queue_depth_per_executor: float = 3.0
    #: ...or when the modeled per-executor backlog drain time exceeds
    #: this multiple of the workload SLO (headroom erosion).
    slo_headroom: float = 1.0
    #: Delay before a scaled-up executor accepts work (empty warm set).
    coldstart_ms: float = 200.0
    #: Consecutive idle evaluations before an executor is retired.
    idle_evals: int = 3

    def __post_init__(self) -> None:
        if self.min_executors < 1:
            raise ValueError("min_executors must be >= 1")
        if self.max_executors < self.min_executors:
            raise ValueError("max_executors must be >= min_executors")
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if self.coldstart_ms < 0:
            raise ValueError("coldstart_ms must be non-negative")
        if self.idle_evals < 1:
            raise ValueError("idle_evals must be >= 1")


class Autoscaler:
    """Grows/shrinks a :class:`~repro.fleet.router.FleetRouter`'s fleet."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        #: Consecutive idle evaluations per executor id.
        self._idle: dict[int, int] = {}

    def evaluate(self, now, queue_depth, backlog_ms, slo_ms, router):
        """One tick: apply scale decisions to ``router``, return actions.

        ``backlog_ms`` is the modeled drain time of the waiting queue per
        active executor.  Returns ``(action, executor_id, reason)``
        tuples for the scheduler to log — the router is already updated.
        """
        actions = []
        active = router.active()
        # Restore the floor first (an executor failure may have dropped
        # the fleet below it) — replacements pay the cold start too.
        while len(active) < self.policy.min_executors:
            lane = router.add_lane(now, coldstart_ms=self.policy.coldstart_ms)
            actions.append(("scale_up", lane.executor_id, "below_min"))
            active = router.active()
        num_active = len(active)
        if num_active < self.policy.max_executors:
            pressure = queue_depth / max(1, num_active)
            if pressure > self.policy.queue_depth_per_executor:
                lane = router.add_lane(now, coldstart_ms=self.policy.coldstart_ms)
                actions.append(("scale_up", lane.executor_id, "queue_depth"))
            elif backlog_ms > self.policy.slo_headroom * slo_ms:
                lane = router.add_lane(now, coldstart_ms=self.policy.coldstart_ms)
                actions.append(("scale_up", lane.executor_id, "slo_headroom"))
        # Idle bookkeeping over the pre-tick lanes (a just-added lane is
        # cold-starting, not idle).
        for lane in active:
            idle = (
                not lane.busy and lane.available_at <= now and queue_depth == 0
            )
            self._idle[lane.executor_id] = (
                self._idle.get(lane.executor_id, 0) + 1 if idle else 0
            )
        for gone in [key for key in self._idle if key not in router.lanes]:
            del self._idle[gone]
        if len(router.active()) > self.policy.min_executors:
            drainable = [
                lane
                for lane in active
                if lane.executor_id in router.lanes
                and self._idle.get(lane.executor_id, 0) >= self.policy.idle_evals
            ]
            if drainable:
                # Retire the newest idle executor first: the oldest lanes
                # hold the deepest warm sets, the cheapest ones to keep.
                victim = max(drainable, key=lambda lane: lane.executor_id)
                router.remove_lane(victim.executor_id)
                self._idle.pop(victim.executor_id, None)
                actions.append(("scale_down", victim.executor_id, "idle"))
        return actions


__all__ = ["Autoscaler", "AutoscalePolicy"]
