"""Cache-aware request placement over a fleet of virtual executors.

The :class:`FleetRouter` is decision-plane machinery: its *lanes* are
models of executors (busy-until horizon, per-executor first-touch warm
set, cumulative modeled work), not the real processes.  The scheduler
consults it at dispatch time; with ``execute=True`` the chosen lane id
selects the identically-named real
:class:`~repro.exec.executor.RenderExecutor` on the data plane.

Routing policies:

* ``affinity`` (default) — consistent-hash the job's ``(scene, lod,
  quant)`` residency key onto the ring.  A free preferred executor wins
  outright.  A busy one is *waited for* only when the cost model says
  waiting pays: projected queue delay plus its (warm) service still fits
  the request's deadline slack **and** beats the best immediately-free
  alternative, which would usually pay a cold first touch.  Otherwise
  the job falls back to the cheapest free executor (least-loaded on
  ties) — affinity never turns into a deadline violation.
* ``random`` — seed-deterministic uniform choice over free executors;
  the placement-quality baseline ``bench_fleet_routing.py`` beats.
* ``least-loaded`` — the free executor with the least cumulative
  modeled work; classic load balancing, blind to cache residency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.autoscaler import AutoscalePolicy
from repro.fleet.ring import ConsistentHashRing, stable_hash

#: Placement policies the router understands.
ROUTINGS: tuple[str, ...] = ("affinity", "random", "least-loaded")


@dataclass(frozen=True)
class FleetPolicy:
    """Fleet shape and placement knobs of a scheduler run."""

    #: Executors the fleet starts with (the autoscaler may change this).
    num_executors: int = 1
    #: Placement policy: one of :data:`ROUTINGS`.
    routing: str = "affinity"
    #: Autoscaling policy (``None`` = fixed fleet size).
    autoscale: AutoscalePolicy | None = None
    #: Weighted-fair per-tenant dispatch ordering (changes dispatch order,
    #: hence decision logs — strictly opt-in).
    fair: bool = False
    #: Per-tenant WFQ weights keyed by client id (missing tenants get 1.0).
    tenant_weights: dict | None = None
    #: Cap on any tenant's share of consumed fleet worker-time (0 < q <= 1);
    #: requests over quota are shed (``quota_exceeded``).  Requires ``fair``.
    tenant_quota: float | None = None
    #: Injected executor failures: ``(t_ms, executor_id)`` virtual-clock
    #: events.  The in-flight request is requeued and re-routed; the
    #: executor's warm state is lost.
    failures: tuple = ()
    #: Seed of the ``random`` routing baseline (decision-plane only).
    seed: int = 0
    #: Virtual nodes per executor on the consistent-hash ring.
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.num_executors < 1:
            raise ValueError("num_executors must be >= 1")
        if self.routing not in ROUTINGS:
            raise ValueError(f"routing must be one of {ROUTINGS}")
        if self.tenant_quota is not None:
            if not self.fair:
                raise ValueError("tenant_quota requires fair dispatch")
            if not 0.0 < self.tenant_quota <= 1.0:
                raise ValueError("tenant_quota must be in (0, 1]")
        if self.vnodes <= 0:
            raise ValueError("vnodes must be positive")
        for event in self.failures:
            if len(event) != 2:
                raise ValueError("failures entries must be (t_ms, executor_id)")


@dataclass
class ExecutorLane:
    """Virtual-clock state of one executor in the fleet."""

    executor_id: int
    #: Virtual time the executor finishes cold-starting (autoscaled lanes).
    available_at: float = 0.0
    busy: bool = False
    busy_until: float = 0.0
    #: Per-executor first-touch warm set of ``(scene, (lod, quant))`` keys —
    #: the fleet generalisation of the scheduler's deployment-wide set.
    touched: set = field(default_factory=set)
    #: Cumulative modeled service time (the least-loaded signal).
    worker_ms: float = 0.0
    jobs: int = 0
    #: Request currently in flight (decision plane), for failure requeue.
    inflight: object | None = None
    #: Monotonic id of the in-flight dispatch (voids stale completions).
    dispatch_id: int | None = None

    @property
    def name(self) -> str:
        return f"executor-{self.executor_id}"

    def free_at(self) -> float:
        """Virtual time this lane can accept a job (busy/cold-start horizon)."""
        return max(self.busy_until if self.busy else 0.0, self.available_at)


class FleetRouter:
    """Places dispatched jobs onto executor lanes (see module docstring)."""

    def __init__(self, policy: FleetPolicy) -> None:
        self.policy = policy
        self.lanes: dict[int, ExecutorLane] = {}
        self.ring = ConsistentHashRing(vnodes=policy.vnodes)
        self._next_id = 0
        self.peak_executors = 0
        for _ in range(policy.num_executors):
            self.add_lane(0.0, coldstart_ms=0.0)

    # ------------------------------------------------------------------
    def add_lane(self, now: float, coldstart_ms: float = 0.0) -> ExecutorLane:
        """Grow the fleet by one executor (cold: empty warm set, start delay)."""
        lane = ExecutorLane(
            executor_id=self._next_id, available_at=now + coldstart_ms
        )
        self._next_id += 1
        self.lanes[lane.executor_id] = lane
        self.ring.add(lane.executor_id)
        self.peak_executors = max(self.peak_executors, len(self.lanes))
        return lane

    def remove_lane(self, executor_id: int) -> ExecutorLane | None:
        """Drop one executor (failure or drain); its warm state is lost."""
        lane = self.lanes.pop(executor_id, None)
        if lane is not None:
            self.ring.remove(executor_id)
        return lane

    def active(self) -> list[ExecutorLane]:
        """Current lanes, id-sorted (deterministic iteration order)."""
        return [self.lanes[key] for key in sorted(self.lanes)]

    def free_lanes(self, now: float) -> list[ExecutorLane]:
        """Lanes able to start a job *now* (idle and past cold start)."""
        return [
            lane
            for lane in self.active()
            if not lane.busy and lane.available_at <= now
        ]

    def earliest_free_ms(self, now: float) -> float:
        """Soonest virtual time any lane can accept a job (``now`` if one can)."""
        lanes = self.active()
        if not lanes:
            return now
        return min(max(lane.free_at(), now) for lane in lanes)

    # ------------------------------------------------------------------
    def place(
        self,
        key,
        request,
        now: float,
        slack_ms: float,
        cost,
    ) -> ExecutorLane | None:
        """Choose a lane for ``request``, or ``None`` to leave it queued.

        ``key`` is the residency key the affinity ring hashes; ``cost``
        maps a lane to the request's modeled service time *on that lane*
        (warm on lanes that already touched the key, cold elsewhere).
        ``None`` means defer: either no lane is free, or affinity decided
        waiting for the warm preferred executor beats a cold fallback and
        still fits ``slack_ms``.
        """
        free = self.free_lanes(now)
        if not free:
            return None
        routing = self.policy.routing
        if routing == "random":
            index = stable_hash(
                f"route:{self.policy.seed}:{request.request_id}"
            ) % len(free)
            return free[index]
        if routing == "least-loaded":
            return min(free, key=lambda lane: (lane.worker_ms, lane.executor_id))
        # affinity
        preferred = self.lanes[self.ring.lookup(key)]
        if not preferred.busy and preferred.available_at <= now:
            return preferred
        fallback = min(
            free, key=lambda lane: (cost(lane), lane.worker_ms, lane.executor_id)
        )
        wait_ms = preferred.free_at() - now
        affinity_ms = wait_ms + cost(preferred)
        # The cost-model tiebreak: hold out for the (usually warm)
        # preferred executor only when the wait both fits the deadline
        # slack and beats serving immediately somewhere colder.
        if affinity_ms <= slack_ms and affinity_ms < cost(fallback):
            return None
        return fallback


__all__ = ["ExecutorLane", "FleetPolicy", "FleetRouter", "ROUTINGS"]
