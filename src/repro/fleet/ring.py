"""A deterministic consistent-hash ring for cache-affinity placement.

The ring maps *residency keys* — the ``(scene, lod, quant)`` tuples the
executor's worker caches key on — to executor ids, with two properties
the fleet's decision plane depends on:

* **Process/seed stability.**  Points come from sha256 over explicit
  strings, never Python's salted ``hash()``, so two processes (or two
  runs with different ``PYTHONHASHSEED``) build bit-identical rings and
  a replayed decision log places every job on the same executor.
* **Bounded movement.**  Each executor owns ``vnodes`` pseudo-random arc
  segments.  Adding or removing one executor only reassigns the keys on
  the arcs it gains or loses — about ``1/n`` of the key space — so a
  scale event does not stampede every warm cache in the fleet.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(text: str) -> int:
    """A 64-bit integer hash of ``text``, identical across processes."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


def key_string(key) -> str:
    """Canonical string form of a residency key (tuples joined on '/')."""
    if isinstance(key, (tuple, list)):
        return "/".join(str(part) for part in key)
    return str(key)


class ConsistentHashRing:
    """Consistent hashing with virtual nodes over integer executor ids."""

    def __init__(self, executors=(), vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        #: Sorted vnode points and their parallel owner list.
        self._points: list[int] = []
        self._owners: list[int] = []
        self._members: set[int] = set()
        for executor_id in executors:
            self.add(executor_id)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, executor_id: int) -> bool:
        return executor_id in self._members

    @property
    def members(self) -> tuple[int, ...]:
        """Current executor ids, sorted."""
        return tuple(sorted(self._members))

    def _vnode_points(self, executor_id: int) -> list[int]:
        return [
            stable_hash(f"executor-{executor_id}#vnode-{replica}")
            for replica in range(self.vnodes)
        ]

    def add(self, executor_id: int) -> None:
        """Insert ``executor_id``'s virtual nodes (idempotent)."""
        if executor_id in self._members:
            return
        self._members.add(executor_id)
        for point in self._vnode_points(executor_id):
            index = bisect.bisect_left(self._points, point)
            # sha256 collisions between distinct vnode labels are not a
            # practical concern; ties resolve to the lower executor id so
            # even a collision would stay deterministic.
            if index < len(self._points) and self._points[index] == point:
                if executor_id < self._owners[index]:
                    self._owners[index] = executor_id
                continue
            self._points.insert(index, point)
            self._owners.insert(index, executor_id)

    def remove(self, executor_id: int) -> None:
        """Drop ``executor_id``'s virtual nodes (idempotent)."""
        if executor_id not in self._members:
            return
        self._members.discard(executor_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != executor_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def lookup(self, key) -> int:
        """The executor owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise LookupError("consistent-hash ring is empty")
        point = stable_hash(key_string(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the highest point to the ring start
        return self._owners[index]


__all__ = ["ConsistentHashRing", "key_string", "stable_hash"]
