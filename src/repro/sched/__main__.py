"""Command-line front end of the request-scheduling subsystem.

Generate a seeded synthetic workload and serve it through the multi-tenant
scheduler, printing a goodput / SLO-attainment / tier-histogram report::

    python -m repro.sched --arrival poisson --rate 8 --duration 20 --slo-ms 250
    python -m repro.sched --arrival bursty --rate 12 --policy fixed \
        --lod 0 --quant lossless --json
    python -m repro.sched --rate 6 --duration 2 --clients 2 --quick \
        --execute --workers 0 --json
    python -m repro.sched --arrival bursty --rate 16 --executors 4 \
        --routing affinity --autoscale --fair --json

By default only the decision plane runs (the deterministic virtual clock —
fast, machine-independent, replayable); ``--execute`` additionally renders
every dispatched job for real through the render farm at the tier the
controller chose.  ``--policy adaptive`` (default) walks the quality ladder
under the SLO controller; ``--policy fixed`` pins serving to the single
``--lod``/``--quant`` tier.  ``--executors N`` serves over a fleet with
cache-aware routing (``--routing``), optional ``--autoscale``, per-tenant
``--fair`` dispatch with ``--tenant-quota``, and ``--fail-executor``
failure injection; fleet reports add placement and per-tenant usage
tables.

The same entry point is installed as the ``repro-sched`` console script.
Exit status 0 on success; 3 when ``--alerts`` rules are firing at the end
of the run (the SLO-violation exit the CI contract tests); bad arguments
exit with ``argparse``'s status 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.eval.reporting import format_table
from repro.eval.scenes import EVAL_SCENES
from repro.gaussians.synthetic import BENCHMARK_SCENES
from repro.obs import (
    CompositeObserver,
    MemoryAttributor,
    ObsContext,
    SpanStackTracker,
    StackSampler,
    TelemetryServer,
    export_metrics,
    export_trace,
    parse_listen,
)
from repro.render.common import BACKENDS
from repro.sched.qos import (
    DEFAULT_LADDER,
    FAST_LADDER,
    EventLog,
    QoSPolicy,
    SLOController,
)
from repro.sched.scheduler import (
    RequestScheduler,
    ScheduleReport,
    SchedulerPolicy,
    run_workload,
)
from repro.fleet import AutoscalePolicy, FleetPolicy, ROUTINGS
from repro.sched.workload import ARRIVAL_KINDS, WorkloadSpec
from repro.serve.farm import DATAFLOWS
from repro.store.codec import QUANT_SPECS


def _parse_failures(specs: list[str] | None, parser) -> tuple:
    """``T_MS:ID`` strings into the policy's ``(t_ms, executor_id)`` tuples."""
    failures = []
    for text in specs or ():
        try:
            t_ms, executor_id = text.split(":", 1)
            failures.append((float(t_ms), int(executor_id)))
        except ValueError:
            parser.error(f"--fail-executor expects T_MS:ID, got {text!r}")
    return tuple(failures)


def build_fleet_policy(args, parser) -> FleetPolicy | None:
    """The :class:`FleetPolicy` the parsed arguments describe (or ``None``)."""
    if args.executors is None:
        for flag, present in (
            ("--routing", args.routing != "affinity"),
            ("--autoscale", args.autoscale),
            ("--fair", args.fair),
            ("--tenant-quota", args.tenant_quota is not None),
            ("--fail-executor", bool(args.fail_executor)),
        ):
            if present:
                parser.error(f"{flag} requires --executors")
        return None
    if args.tenant_quota is not None and not args.fair:
        parser.error("--tenant-quota requires --fair")
    if args.tenant_quota is not None and args.tenant_quota > 1.0:
        parser.error("--tenant-quota must be in (0, 1]")
    autoscale = None
    if args.autoscale:
        if args.autoscale_max < args.executors:
            parser.error("--autoscale-max must be >= --executors")
        autoscale = AutoscalePolicy(
            min_executors=args.executors, max_executors=args.autoscale_max
        )
    return FleetPolicy(
        num_executors=args.executors,
        routing=args.routing,
        autoscale=autoscale,
        fair=args.fair,
        tenant_quota=args.tenant_quota,
        failures=_parse_failures(args.fail_executor, parser),
        seed=args.seed,
    )


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _frame_choices(text: str) -> tuple[int, ...]:
    try:
        frames = tuple(int(part) for part in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}") from exc
    if not frames or any(n <= 0 for n in frames):
        raise argparse.ArgumentTypeError("frame counts must be positive")
    return frames


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Serve a seeded synthetic workload through the multi-tenant "
            "SLO-aware request scheduler."
        ),
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument(
        "--arrival",
        default="poisson",
        choices=ARRIVAL_KINDS,
        help="arrival process (open-loop)",
    )
    workload.add_argument(
        "--rate",
        type=_positive_float,
        default=4.0,
        help="mean offered load, requests per second",
    )
    workload.add_argument(
        "--duration",
        type=_positive_float,
        default=20.0,
        help="arrival window in seconds",
    )
    workload.add_argument(
        "--clients",
        type=_positive_int,
        default=4,
        help="number of tenants issuing requests",
    )
    workload.add_argument(
        "--scenes",
        nargs="+",
        default=list(BENCHMARK_SCENES),
        choices=sorted(EVAL_SCENES),
        metavar="SCENE",
        help="scene catalogue in popularity-rank order (Zipf rank 1 first)",
    )
    workload.add_argument(
        "--zipf-s",
        type=_nonnegative_float,
        default=1.1,
        help="Zipf exponent of scene popularity (0 = uniform)",
    )
    workload.add_argument(
        "--frames-mix",
        type=_frame_choices,
        default=(2, 4, 8),
        metavar="N,N,...",
        help="frame counts a request may ask for (comma-separated)",
    )
    workload.add_argument(
        "--slo-ms",
        type=_positive_float,
        default=250.0,
        help="per-request end-to-end latency SLO (relative deadline)",
    )
    workload.add_argument(
        "--seed",
        type=_nonnegative_int,
        default=0,
        help="workload seed (same seed = same stream and decision log)",
    )
    serving = parser.add_argument_group("serving")
    serving.add_argument(
        "--policy",
        default="adaptive",
        choices=("adaptive", "fixed"),
        help="adaptive quality ladder vs a fixed (--lod/--quant) tier",
    )
    serving.add_argument(
        "--lod",
        type=_nonnegative_int,
        default=0,
        help="fixed-policy LOD level (ignored with --policy adaptive)",
    )
    serving.add_argument(
        "--quant",
        default="lossless",
        choices=sorted(QUANT_SPECS),
        help="fixed-policy quantization tier (ignored with --policy adaptive)",
    )
    serving.add_argument(
        "--ladder",
        default="default",
        choices=("default", "fast"),
        help=(
            "adaptive quality ladder: 'default' is the float64 (lod, quant) "
            "ladder; 'fast' interleaves float32 fast-path rungs that trade "
            "bitwise reproducibility (PSNR-floored vs the float64 oracle) "
            "for throughput before giving up fidelity (ignored with "
            "--policy fixed; requires --dataflow tilewise)"
        ),
    )
    serving.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="farm worker lanes (0 or 1 = sequential farm)",
    )
    serving.add_argument(
        "--max-shards",
        type=_positive_int,
        default=1,
        help=(
            "most tile-range shards the dispatcher may split one frame "
            "into to rescue a latency-critical request (1 = never shard; "
            "sharded output merges bitwise-exactly, so this costs no "
            "quality; requires --dataflow tilewise)"
        ),
    )
    serving.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        help="admission bound on waiting requests",
    )
    serving.add_argument(
        "--window",
        type=_positive_int,
        default=16,
        help="SLO controller sliding window (completed requests)",
    )
    serving.add_argument(
        "--dataflow",
        default="tilewise",
        choices=DATAFLOWS,
        help="rendering dataflow of dispatched jobs",
    )
    serving.add_argument(
        "--backend",
        default="vectorized",
        choices=BACKENDS,
        help="rasterisation engine of dispatched jobs",
    )
    serving.add_argument(
        "--quick",
        action="store_true",
        help="serve the reduced quick presets (smoke runs)",
    )
    serving.add_argument(
        "--execute",
        action="store_true",
        help="really render every dispatched job through the farm",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--executors",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "serve over a fleet of N executors with cache-aware routing "
            "(default: the historical single-executor scheduler; with "
            "--execute each fleet member gets its own named render "
            "executor)"
        ),
    )
    fleet.add_argument(
        "--routing",
        default="affinity",
        choices=ROUTINGS,
        help=(
            "fleet placement policy: consistent-hash cache affinity with a "
            "cost-model tiebreak (default), seeded random, or least-loaded "
            "(requires --executors)"
        ),
    )
    fleet.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "grow/shrink the fleet against queue depth and SLO headroom on "
            "the virtual clock (cold starts cost time; requires --executors)"
        ),
    )
    fleet.add_argument(
        "--autoscale-max",
        type=_positive_int,
        default=8,
        metavar="N",
        help="most executors --autoscale may grow to",
    )
    fleet.add_argument(
        "--fair",
        action="store_true",
        help=(
            "weighted-fair per-tenant dispatch ordering instead of pure "
            "priority/EDF (requires --executors)"
        ),
    )
    fleet.add_argument(
        "--tenant-quota",
        type=_positive_float,
        default=None,
        metavar="SHARE",
        help=(
            "shed a tenant's requests beyond this share (0, 1] of consumed "
            "fleet worker-time (requires --fair)"
        ),
    )
    fleet.add_argument(
        "--fail-executor",
        action="append",
        default=None,
        metavar="T_MS:ID",
        help=(
            "inject an executor failure at virtual time T_MS: the in-flight "
            "request requeues onto survivors and the executor's warm state "
            "is lost (repeatable; requires --executors)"
        ),
    )
    output = parser.add_argument_group("output")
    output.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    output.add_argument(
        "--events",
        action="store_true",
        help="include the full decision event log in the report (implies --json)",
    )
    output.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "write a trace of the run to PATH: Chrome trace_event JSON "
            "(open in Perfetto / chrome://tracing) or raw span JSON-lines "
            "when PATH ends in .jsonl; decision-plane spans use the virtual "
            "clock, data-plane spans (with --execute) the wall clock"
        ),
    )
    output.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write run metrics to PATH in Prometheus text exposition format",
    )
    output.add_argument(
        "--analyze-out",
        metavar="PATH",
        help=(
            "write the trace analysis (critical path, stage/lane breakdowns, "
            "timelines) of this run to PATH as JSON"
        ),
    )
    output.add_argument(
        "--alerts",
        metavar="PATH",
        help=(
            "evaluate the JSON alert rules at PATH against this run's "
            "decision log (deterministic on the virtual clock); exit 3 "
            "if any rule is firing at the end of the run"
        ),
    )
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help=(
            "serve live telemetry over HTTP while the run executes: "
            "/metrics (Prometheus), /health (JSON), /trace.jsonl "
            "(incremental span tail), /profile?seconds=N (collapsed-stack "
            "CPU capture), / (timeline HTML); port 0 binds an ephemeral "
            "port (printed to stderr); implies an obs context"
        ),
    )
    telemetry.add_argument(
        "--profile-memory",
        action="store_true",
        help=(
            "additionally attribute allocations per kernel stage / decode "
            "span via tracemalloc (adds tracing overhead; surfaces in "
            "/profile?format=json; requires --listen)"
        ),
    )
    return parser


def build_controller(args: argparse.Namespace) -> SLOController:
    """The SLO controller the parsed arguments describe."""
    policy = QoSPolicy(
        adaptive=args.policy == "adaptive",
        window=args.window,
        min_samples=max(1, args.window // 2),
    )
    if args.policy == "adaptive":
        ladder = FAST_LADDER if args.ladder == "fast" else DEFAULT_LADDER
    else:
        ladder = ((args.lod, args.quant),)
    return SLOController(policy=policy, ladder=ladder, log=EventLog())


def format_report(report: ScheduleReport) -> str:
    """Render a :class:`ScheduleReport` as a human-readable text report."""
    summary = report.summary()
    requests = summary["requests"]
    latency = summary["latency_ms"]
    mode = "adaptive ladder" if report.qos_policy.adaptive else "fixed tier"
    lines = [
        f"Scheduler run: arrival={report.spec.arrival} "
        f"offered={summary['offered_rps']:.2f} rps over {report.spec.duration_s:.1f} s   "
        f"clients={report.spec.num_clients}   slo={report.spec.slo_ms:.0f} ms   "
        f"policy={mode} ({' > '.join(summary['policy']['ladder'])})",
        f"  requests: {requests['offered']} offered   "
        f"{requests['completed']} completed   {requests['shed']} shed   "
        f"{requests['rejected']} rejected",
        f"  slo attainment: {summary['slo_attainment']:.1%}   "
        f"goodput: {summary['goodput_rps']:.2f} rps   "
        f"shed rate: {summary['shed_rate']:.1%}",
        f"  e2e latency: p50 {latency['e2e_p50']:.1f} ms   "
        f"p95 {latency['e2e_p95']:.1f} ms   max {latency['e2e_max']:.1f} ms   "
        f"(queue wait p95 {latency['queue_wait_p95']:.1f} ms)",
        f"  decisions: " + (
            "   ".join(f"{k}={v}" for k, v in summary["decisions"].items()) or "none"
        ),
        f"  dispatch warmth: {summary['dispatch']['cold']} cold   "
        f"{summary['dispatch']['warm']} warm (first touch of a tier ships+decodes; "
        f"warm dispatches reuse resident scenes)",
    ]
    fleet = summary.get("fleet")
    if fleet is not None:
        lines.append(
            f"  fleet: routing={fleet['routing']}   "
            f"executors {fleet['executors_initial']} -> {fleet['executors_final']} "
            f"(peak {fleet['executors_peak']})   "
            f"scale +{fleet['scale_ups']}/-{fleet['scale_downs']}   "
            f"failures {fleet['failures']} ({fleet['requeues']} requeued)   "
            f"modeled ship {fleet['ship_bytes']} B"
        )
        if fleet["placements"]:
            lines.append(
                "  placements: "
                + "   ".join(
                    f"{name}={count}" for name, count in fleet["placements"].items()
                )
            )
    if summary["executed"]:
        measured = summary["measured"]
        lines.append(
            f"  data plane: {measured['frames']} frames rendered   "
            f"measured frame p50 {measured['frame_p50_ms']:.1f} ms   "
            f"p95 {measured['frame_p95_ms']:.1f} ms"
        )
        residency = measured.get("data_plane") or {}
        if residency:
            lines.append(
                f"  data-plane residency: {residency['cache_hits']} scene-cache hits   "
                f"{residency['cache_misses']} misses   "
                f"{residency['ship_bytes']} B published   "
                f"{residency['loaded_bytes']} B worker-loaded"
            )
    lines += [
        "",
        format_table(
            ["tier", "requests served"],
            sorted(summary["tier_histogram"].items()),
            title="Tier histogram",
        ),
    ]
    tenants = summary.get("tenant_usage")
    if tenants:
        lines += [
            "",
            format_table(
                ["tenant", "requests", "frames", "ship bytes", "worker-s"],
                [
                    (
                        f"client-{tenant}",
                        usage["requests"],
                        usage["frames"],
                        usage["ship_bytes"],
                        f"{usage['worker_seconds']:.3f}",
                    )
                    for tenant, usage in tenants.items()
                ],
                title="Tenant usage",
            ),
        ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.max_shards > 1 and args.dataflow != "tilewise":
        parser.error("--max-shards > 1 requires --dataflow tilewise")
    if args.ladder == "fast" and args.dataflow != "tilewise":
        parser.error("--ladder fast requires --dataflow tilewise")
    spec = WorkloadSpec(
        arrival=args.arrival,
        rate_rps=args.rate,
        duration_s=args.duration,
        num_clients=args.clients,
        scenes=tuple(args.scenes),
        zipf_s=args.zipf_s,
        frame_choices=tuple(args.frames_mix),
        slo_ms=args.slo_ms,
        seed=args.seed,
    )
    if args.profile_memory and not args.listen:
        parser.error("--profile-memory requires --listen")
    listen_addr = None
    if args.listen:
        try:
            listen_addr = parse_listen(args.listen)
        except ValueError as exc:
            parser.error(str(exc))
    needs_obs = args.trace_out or args.metrics_out or args.analyze_out or args.listen
    obs = ObsContext.create() if needs_obs else None
    sampler = memory = None
    if listen_addr is not None:
        # The live profiling plane rides the tracer's observer slot: the
        # span tracker tags CPU samples with the innermost kernel-stage
        # span, and (opt-in) the memory attributor brackets the same
        # spans with tracemalloc readings.  All of it reads measured
        # values only — the zero-perturbation suite pins that attaching
        # it changes no rendered bit and no scheduler decision.
        tracker = SpanStackTracker()
        sampler = StackSampler(tracker=tracker)
        if args.profile_memory:
            memory = MemoryAttributor()
            memory.start()
            obs.tracer.observer = CompositeObserver(tracker, memory)
        else:
            obs.tracer.observer = tracker
        sampler.start()
    with RequestScheduler(
        policy=SchedulerPolicy(
            num_workers=args.workers,
            max_queue=args.max_queue,
            dataflow=args.dataflow,
            backend=args.backend,
            max_shards=args.max_shards,
        ),
        qos=build_controller(args),
        quick=args.quick,
        execute=args.execute,
        obs=obs,
        fleet=build_fleet_policy(args, parser),
    ) as scheduler:
        server = None
        try:
            if listen_addr is not None:
                server = TelemetryServer(
                    *listen_addr,
                    tracer=obs.tracer,
                    metrics_fn=scheduler.live_metrics,
                    health_fn=scheduler.health,
                    sampler=sampler,
                    memory=memory,
                ).start()
                print(
                    f"telemetry: listening on http://{server.address}/",
                    file=sys.stderr,
                    flush=True,
                )
            report = run_workload(spec, scheduler)
            # Health must be read while the pool is alive (close() empties it).
            health = scheduler.health()
        finally:
            if server is not None:
                server.stop()
            if sampler is not None:
                sampler.stop()
            if memory is not None:
                memory.stop()
    if obs is not None:
        if args.trace_out:
            export_trace(args.trace_out, obs.tracer)
        if args.metrics_out:
            export_metrics(args.metrics_out, obs.metrics)
        if args.analyze_out:
            from repro.obs.analysis import analyze

            with open(args.analyze_out, "w", encoding="utf-8") as fh:
                json.dump(analyze(obs.tracer.spans), fh, indent=2, sort_keys=True)
                fh.write("\n")

    alerts = None
    if args.alerts:
        from repro.obs.alerts import AlertEngine, firing_rules, load_rules, samples_from_schedule_log

        with open(args.alerts, "r", encoding="utf-8") as fh:
            rules = load_rules(json.load(fh))
        log = AlertEngine(rules).evaluate(samples_from_schedule_log(report.log.events))
        alerts = {"rules": len(rules), "log": log, "firing": firing_rules(log)}

    if args.json or args.events:
        summary = report.summary(include_events=args.events)
        if summary["measured"] is not None and health is not None:
            summary["measured"]["health"] = health
        if alerts is not None:
            summary["alerts"] = alerts
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_report(report))
        if health is not None:
            states = health["states"]
            print(
                f"  data-plane health: {health['mode']} mode   "
                f"{states['live']} live   {states['slow']} slow   "
                f"{states['stalled']} stalled   "
                f"{health['workers_replaced']} replaced"
            )
        if alerts is not None:
            if alerts["firing"]:
                print(f"  alerts FIRING: {', '.join(alerts['firing'])}")
            else:
                print("  alerts: none firing")
    return 3 if alerts is not None and alerts["firing"] else 0


if __name__ == "__main__":
    sys.exit(main())
