"""SLO-aware adaptive quality control: the policy half of the scheduler.

PR 3's scene store gave the serving stack a quality/cost dial — the
``(lod, quant)`` tier of the scene a job renders — and this module is what
turns it.  An :class:`SLOController` watches a sliding window of completed
requests' end-to-end latencies and walks a **tier ladder** (costly to cheap)
in response:

* when windowed p95 latency exceeds ``degrade_at x SLO``, step one rung
  *down* (cheaper tier: fewer Gaussians, coarser quantization);
* when p95 drops below ``upgrade_at x SLO``, step back *up* — the hysteresis
  gap between the two thresholds plus a cooldown (minimum completions
  between moves) prevents flapping;
* the window is cleared on every move, so each rung is judged by latencies
  it actually produced, not by the backlog the previous rung left behind.

Load shedding is the ladder's last rung conceptually: admission control
(:mod:`repro.sched.scheduler`) asks :meth:`SLOController.should_shed`
whether a request could meet its deadline *even at the cheapest tier*, and
drops it up front when it cannot — serving it would burn capacity to
produce a guaranteed SLO miss.

Every decision — tier moves, sheds, admissions, dispatches, completions —
is recorded in a structured :class:`EventLog` (plain dicts, JSON-ready).
Because the scheduler runs its decision plane on a deterministic virtual
clock (see :mod:`repro.sched.scheduler`), identical seeds reproduce the
decision log byte for byte; the log *is* the replayable audit trail the
acceptance criteria call for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.obs.events import StructuredEventLog
from repro.render.common import DTYPES
from repro.store.codec import QUANT_SPECS

#: One rung of the quality ladder: the ``(lod, quant)`` tier jobs render
#: at, optionally extended to ``(lod, quant, dtype)`` where ``dtype`` is a
#: :data:`repro.render.common.DTYPES` engine mode.  A two-element tier is
#: exactly equivalent to the same tier with ``dtype="float64"`` (ladders
#: normalise the redundant third element away), so every pre-float32
#: ladder, event log and histogram is unchanged byte for byte.
Tier = tuple

#: Default quality ladder, most expensive first.  Quantization steps shrink
#: the shipped/decoded payload; LOD steps shrink the per-frame render work
#: itself (level k keeps ``0.5**k`` of the Gaussians), so successive rungs
#: trade progressively more fidelity for progressively more headroom.
DEFAULT_LADDER: tuple[Tier, ...] = (
    (0, "lossless"),
    (0, "fp16"),
    (1, "fp16"),
    (1, "compact"),
    (2, "compact"),
    (3, "compact"),
)

#: Opt-in ladder whose cheap half runs the float32 tile-wise fast path:
#: each float32 rung renders the *same scene tier* as the float64 rung
#: above it, trading bitwise reproducibility (the float32 image is held to
#: a PSNR floor against the float64 oracle, not to equality) for render
#: throughput before any further fidelity is given up to LOD/quant.  The
#: default ladder is untouched — schedulers opt in explicitly.
FAST_LADDER: tuple[Tier, ...] = (
    (0, "lossless"),
    (0, "lossless", "float32"),
    (0, "fp16", "float32"),
    (1, "fp16", "float32"),
    (1, "compact", "float32"),
    (2, "compact", "float32"),
    (3, "compact", "float32"),
)


def tier_lod(tier: Tier) -> int:
    """Detail level of a tier (2- and 3-element forms alike)."""
    return int(tier[0])


def tier_quant(tier: Tier) -> str:
    """Quantization tier of a tier (2- and 3-element forms alike)."""
    return tier[1]


def tier_dtype(tier: Tier) -> str:
    """Engine dtype of a tier (``"float64"`` for the two-element form)."""
    return tier[2] if len(tier) > 2 else "float64"


def tier_name(tier: Tier) -> str:
    """Stable string form of a tier (used by histograms and event logs).

    Float64 tiers keep their historical ``lodK/quant`` names (logs and
    histograms of pre-float32 ladders replay byte-identically); a float32
    tier appends the dtype as a third path segment.
    """
    name = f"lod{tier[0]}/{tier[1]}"
    dtype = tier_dtype(tier)
    return name if dtype == "float64" else f"{name}/{dtype}"


class EventLog(StructuredEventLog):
    """Append-only structured record of every scheduling/QoS decision.

    Entries are plain dicts with at least ``t_ms`` (virtual-clock timestamp)
    and ``event`` (the decision kind); emitters attach whatever fields
    describe the decision.  The log is JSON-serialisable as-is and list
    equality is the determinism check two same-seed runs must pass.

    Since the observability PR this is the scheduler-facing name of
    :class:`repro.obs.StructuredEventLog`: entry construction (and hence
    every committed decision-log replay) is byte-identical to the historic
    implementation, and the inherited *sink* mechanism is how decision
    events are teed into a tracer as virtual-clock instants without the
    log itself changing.
    """


@dataclass(frozen=True)
class QoSPolicy:
    """Knobs of the SLO controller.

    Attributes
    ----------
    adaptive:
        ``False`` pins the controller to its starting rung forever (the
        fixed-tier baseline the benchmark compares against); sheds are
        still possible — a fixed-tier server must drop hopeless work too,
        otherwise every comparison conflates tiering with admission.
    window:
        Sliding-window length in completed requests.
    min_samples:
        Completions required in the window before p95 is trusted.
    cooldown:
        Minimum completions between two tier moves.
    degrade_at / upgrade_at:
        Hysteresis thresholds on windowed p95 as multiples of the SLO
        (degrade above ``degrade_at x slo``, upgrade below
        ``upgrade_at x slo``).  ``upgrade_at`` must stay below
        ``degrade_at``.
    """

    adaptive: bool = True
    window: int = 16
    min_samples: int = 8
    cooldown: int = 4
    degrade_at: float = 1.0
    upgrade_at: float = 0.5

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not 0 < self.min_samples <= self.window:
            raise ValueError("min_samples must lie in [1, window]")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.degrade_at <= 0 or self.upgrade_at <= 0:
            raise ValueError("thresholds must be positive")
        if self.upgrade_at >= self.degrade_at:
            raise ValueError(
                "upgrade_at must stay below degrade_at (hysteresis gap)"
            )


class SLOController:
    """Adaptive (lod, quant) selection against a p95 latency SLO.

    Parameters
    ----------
    policy:
        The :class:`QoSPolicy` knobs.
    ladder:
        Quality rungs, most expensive first.  A fixed-tier controller is a
        one-rung ladder (or ``adaptive=False`` on a longer one).
    log:
        The shared :class:`EventLog` decisions are emitted into (a private
        log is created when omitted).
    """

    def __init__(
        self,
        policy: QoSPolicy | None = None,
        ladder: tuple[Tier, ...] = DEFAULT_LADDER,
        log: EventLog | None = None,
    ) -> None:
        self.policy = policy or QoSPolicy()
        if not ladder:
            raise ValueError("ladder must have at least one tier")
        normalised = []
        for tier in ladder:
            if len(tier) not in (2, 3):
                raise ValueError(
                    f"ladder tiers must be (lod, quant) or (lod, quant, dtype), got {tier!r}"
                )
            if tier[0] < 0:
                raise ValueError("ladder lod levels must be non-negative")
            if tier[1] not in QUANT_SPECS:
                raise ValueError(
                    f"unknown ladder quant tier {tier[1]!r}; "
                    f"available: {sorted(QUANT_SPECS)}"
                )
            dtype = tier_dtype(tier)
            if dtype not in DTYPES:
                raise ValueError(
                    f"unknown ladder dtype {dtype!r}; available: {DTYPES}"
                )
            # A float64 third element is redundant — normalise it away so
            # (lod, quant) and (lod, quant, "float64") are one tier (same
            # name, same warmth key, same histogram bucket).
            if dtype == "float64":
                normalised.append((int(tier[0]), tier[1]))
            else:
                normalised.append((int(tier[0]), tier[1], dtype))
        self.ladder = tuple(normalised)
        self.log = log if log is not None else EventLog()
        self._rung = 0
        self._window: deque[float] = deque(maxlen=self.policy.window)
        self._since_move = 0

    # ------------------------------------------------------------------
    def reset(self, log: EventLog | None = None) -> None:
        """Return the controller to its initial state (new serving run).

        Clears the dynamic state — ladder rung, latency window, cooldown
        counter — while keeping the configured policy and ladder, and
        installs ``log`` (a fresh :class:`EventLog` when given) as the
        decision log.  :meth:`RequestScheduler.run` calls this at the start
        of every run, which is what makes a scheduler instance reusable:
        each run starts from rung 0 with an empty log, so identical seeds
        replay identical decision logs no matter how many runs preceded
        them.
        """
        self._rung = 0
        self._window.clear()
        self._since_move = 0
        if log is not None:
            self.log = log

    @property
    def rung(self) -> int:
        """Index of the current ladder rung (0 = most expensive)."""
        return self._rung

    @property
    def current_tier(self) -> Tier:
        """The (lod, quant) tier new dispatches should render at."""
        return self.ladder[self._rung]

    @property
    def cheapest_tier(self) -> Tier:
        """The cheapest tier this controller is *willing* to serve at.

        What admission control projects feasibility against: the ladder's
        last rung for an adaptive controller, but the pinned current rung
        when ``adaptive=False`` — a fixed-tier controller never serves
        below its rung, so shedding must not pretend it would.
        """
        return self.ladder[-1] if self.policy.adaptive else self.current_tier

    def window_p95_ms(self) -> float | None:
        """p95 of the current window, or ``None`` below ``min_samples``."""
        if len(self._window) < self.policy.min_samples:
            return None
        return float(np.percentile(np.array(self._window), 95))

    # ------------------------------------------------------------------
    def observe(self, t_ms: float, e2e_ms: float, slo_ms: float) -> None:
        """Feed one completed request's end-to-end latency.

        May emit a ``tier_down`` / ``tier_up`` decision once the window
        holds ``min_samples`` completions and ``cooldown`` completions have
        passed since the last move.  The window is cleared on every move so
        the new rung is judged only by latencies rendered at it.
        """
        self._window.append(float(e2e_ms))
        self._since_move += 1
        if not self.policy.adaptive or len(self.ladder) == 1:
            return
        if self._since_move < self.policy.cooldown:
            return
        p95 = self.window_p95_ms()
        if p95 is None:
            return
        if p95 > slo_ms * self.policy.degrade_at and self._rung < len(self.ladder) - 1:
            self._move(t_ms, self._rung + 1, "tier_down", p95, slo_ms)
        elif p95 < slo_ms * self.policy.upgrade_at and self._rung > 0:
            self._move(t_ms, self._rung - 1, "tier_up", p95, slo_ms)

    def _move(
        self, t_ms: float, new_rung: int, event: str, p95: float, slo_ms: float
    ) -> None:
        old = self.current_tier
        self._rung = new_rung
        self._since_move = 0
        self._window.clear()
        self.log.emit(
            t_ms,
            event,
            from_tier=tier_name(old),
            to_tier=tier_name(self.current_tier),
            p95_ms=round(p95, 3),
            slo_ms=slo_ms,
        )

    # ------------------------------------------------------------------
    def should_shed(self, projected_cheapest_e2e_ms: float, slo_ms: float) -> bool:
        """True when even the cheapest tier is projected to miss the SLO.

        ``projected_cheapest_e2e_ms`` is the scheduler's estimate of the
        request's end-to-end latency were it admitted *and* served at the
        ladder's cheapest rung; when that already exceeds the SLO, admitting
        the request can only produce a guaranteed miss while delaying
        everyone behind it.
        """
        return projected_cheapest_e2e_ms > slo_ms


__all__ = [
    "DEFAULT_LADDER",
    "FAST_LADDER",
    "EventLog",
    "QoSPolicy",
    "SLOController",
    "Tier",
    "tier_dtype",
    "tier_lod",
    "tier_name",
    "tier_quant",
]
