"""Multi-tenant request scheduling: synthetic traffic, SLOs, adaptive quality.

This package is the serving layer's *control plane*.  PR 2's render farm
executes one pre-built job; PR 3's scene store prices quality in
``(lod, quant)`` tiers; this subsystem adds the traffic, the contention and
the policy that connect them:

* :mod:`repro.sched.workload` — seeded open-loop traffic generation:
  Poisson / bursty (Markov-modulated) arrivals, Zipf scene popularity,
  per-client trajectory and frame-count mixes.  Deterministic per seed.
* :mod:`repro.sched.scheduler` — the admission-controlled
  :class:`~repro.sched.scheduler.RequestScheduler`: priority/deadline
  queues, a deterministic virtual-clock decision plane
  (:class:`~repro.sched.scheduler.ServiceModel`, which models the
  executor's warm/cold dispatch split), and an optional real data plane
  submitting overlapping :class:`~repro.serve.trajectories.RenderJob`\\ s
  to a persistent :class:`~repro.exec.executor.RenderExecutor`.
* :mod:`repro.sched.qos` — the
  :class:`~repro.sched.qos.SLOController`: windowed-p95 monitoring, the
  quality tier ladder, hysteresis, load shedding, and the structured
  :class:`~repro.sched.qos.EventLog` every decision is recorded in.
* ``python -m repro.sched`` (also installed as ``repro-sched``) — the
  command-line front end emitting text/JSON reports (goodput, SLO
  attainment, shed rate, tier histogram).

Quickstart::

    from repro.sched import RequestScheduler, WorkloadSpec, run_workload

    spec = WorkloadSpec(arrival="bursty", rate_rps=8.0, duration_s=30.0)
    report = run_workload(spec, RequestScheduler())
    print(report.slo_attainment, report.tier_histogram())
"""

from repro.sched.qos import (
    DEFAULT_LADDER,
    EventLog,
    QoSPolicy,
    SLOController,
    tier_name,
)
from repro.sched.scheduler import (
    RequestOutcome,
    RequestScheduler,
    ScheduleReport,
    SchedulerPolicy,
    ServiceModel,
    run_workload,
)
from repro.sched.workload import (
    ARRIVAL_KINDS,
    ClientProfile,
    Request,
    WorkloadSpec,
    client_profiles,
    generate_workload,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ClientProfile",
    "DEFAULT_LADDER",
    "EventLog",
    "QoSPolicy",
    "Request",
    "RequestOutcome",
    "RequestScheduler",
    "SLOController",
    "ScheduleReport",
    "SchedulerPolicy",
    "ServiceModel",
    "WorkloadSpec",
    "client_profiles",
    "generate_workload",
    "run_workload",
    "tier_name",
]
