"""Multi-tenant request scheduler: admission, queueing, dispatch, accounting.

:class:`RequestScheduler` consumes a :mod:`repro.sched.workload` request
stream and serves it through the render farm under an SLO controller.  The
design splits two planes:

* **Decision plane (virtual clock, deterministic).**  Arrivals, admission
  control, queueing, dispatch order and the QoS controller all run on an
  event-driven simulation whose service durations come from a deterministic
  analytic :class:`ServiceModel` (per-frame cost from the preset's Gaussian
  count at the request's LOD, pixel count, and the quant tier's shipping
  bytes).  Every decision is therefore a pure function of the workload seed
  and the configuration — identical seeds replay identical event logs,
  which is what makes SLO experiments comparable across machines and runs.
* **Data plane (optional, real).**  With ``execute=True`` every dispatched
  request is additionally *submitted* to a persistent
  :class:`~repro.exec.executor.RenderExecutor` at exactly the
  ``(lod, quant)`` tier the decision plane chose — jobs overlap across the
  executor's worker slots instead of blocking the loop on a per-job farm
  pool, scenes stay resident in the long-lived workers, and per-frame
  completions stream back through ``on_frame``.  Measured wall/frame times
  are drained after the virtual loop and recorded alongside the modeled
  ones (they never feed back into decisions — that would trade
  replayability for machine-local noise).

The service model mirrors the executor's residency: the *first* dispatch
of a ``(scene, lod, quant)`` tier is costed cold (``dispatch_cold_ms`` plus
encoded-payload shipping), every later dispatch of that tier is warm
(``dispatch_warm_ms``, nothing shipped).  Warmth is a pure function of the
decision sequence, so identical seeds still replay identical logs.

Scheduling discipline: admitted requests wait in a priority/deadline queue
— strict priority classes (premium tenants first), earliest absolute
deadline within a class — and the farm serves one job at a time with its
``num_workers`` frame-parallel lanes, which is exactly the contention that
makes admission control and adaptive tiering necessary.

Admission control at arrival time:

1. **queue bound** — reject (``reject`` event) when ``max_queue`` requests
   are already waiting;
2. **deadline feasibility** — project the request's end-to-end latency if
   served at the *cheapest* ladder tier behind the current backlog (the
   backlog itself costed at the controller's *current* tier — the tier the
   queue will actually drain at), and shed (``shed`` event) when even that
   projection misses the deadline — the load-shedding half of the QoS
   story.

At dispatch the tier is chosen **per request**: the controller's current
rung, demoted down the ladder only as far as the request's remaining
deadline slack requires (see :meth:`RequestScheduler._dispatch_tier`); a
request whose slack no longer fits even the cheapest rung is shed at the
head of the queue (``shed`` event, ``deadline_expired_in_queue``) instead
of burning capacity on a guaranteed miss.  Both behaviours belong to the
*adaptive* controller — the fixed-tier baseline serves blindly at its
pinned rung.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.eval.scenes import eval_preset
from repro.exec.executor import RenderExecutor
from repro.fleet import Autoscaler, FairQueue, FleetPolicy, FleetRouter, UsageMeter
from repro.gaussians.synthetic import scaled_image_size, scene_spec
from repro.obs import VIRTUAL, MetricsRegistry, ObsContext
from repro.render.common import BACKENDS
from repro.sched.qos import (
    EventLog,
    QoSPolicy,
    SLOController,
    Tier,
    tier_dtype,
    tier_name,
)
from repro.sched.workload import Request, WorkloadSpec
from repro.serve.farm import DATAFLOWS, RenderFarm
from repro.serve.trajectories import RenderJob, make_trajectory
from repro.store.codec import quant_spec
from repro.store.lod import DEFAULT_RATIO, lod_keep_count


# ----------------------------------------------------------------------
# Deterministic service-time model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceModel:
    """Analytic per-job cost model driving the virtual clock.

    Costs are linear in the work the renderer actually does — Gaussians
    preprocessed per frame and pixels blended — plus a per-job dispatch
    overhead that scales with the *encoded* scene bytes the job's quant
    tier would ship to the farm.  The coefficients are fixed constants (not
    measured), which is deliberate: the model's job is to give the decision
    plane a replayable notion of time whose *shape* matches the real system
    (LOD halves render cost per level, quantization shrinks shipping), not
    to predict any one machine's milliseconds.

    Scene sizes are derived analytically from the preset tables
    (``base_num_gaussians x scale``, then the LOD keep-count rule), so
    costing a request against a built-in preset never builds a scene; the
    one exception is a store-backed preset (``preset.store`` set), whose
    size only the store knows — resolving it may build the base scene once,
    after which the store's cache and this model's memo both hold it.

    Per-(scene, quick, lod) results are memoised on the instance — the
    admission path costs the whole queue against the model on every
    arrival, and the underlying preset tables are stable for the model's
    lifetime, so the arithmetic is paid once per distinct tier.
    """

    #: Fixed per-frame overhead (projection setup, sorting, traversal).
    frame_base_ms: float = 1.0
    #: Per-frame cost per thousand Gaussians at the request's LOD.
    ms_per_kgaussian: float = 1.0
    #: Per-frame cost per thousand rendered pixels.
    ms_per_kpixel: float = 0.05
    #: Per-job dispatch overhead on a *cold* tier: the first time a
    #: ``(scene, lod, quant)`` tier is dispatched the executor must encode
    #: the payload and the workers must decode it (plus the per-megabyte
    #: shipping term below) — the cost the seed farm paid on *every* job
    #: when it rebuilt its pool per dispatch.
    dispatch_cold_ms: float = 4.0
    #: Per-job dispatch overhead on a *warm* tier: queue pop and job build
    #: against already-resident worker scenes.  No shipping term applies.
    dispatch_warm_ms: float = 0.75
    #: Scene-shipping cost per megabyte of the quant tier's encoded payload
    #: (cold dispatches only — a warm tier is already resident).
    ship_ms_per_mb: float = 4.0
    #: Fixed overhead each *extra* tile-range shard of a frame adds on top
    #: of the frame base (every shard re-runs projection and pair building;
    #: the compositor merges the partials).  Zero-cost at ``shards=1``, so
    #: the pre-sharding model is reproduced exactly by default.
    shard_overhead_ms: float = 0.25
    #: Multiplier on the per-Gaussian and per-pixel *work* terms when a
    #: tier renders in float32 (the tile-wise fast path).  The frame base
    #: and dispatch overheads are dtype-independent.
    float32_work_factor: float = 0.6
    #: LOD keep ratio (level k retains ``lod_ratio**k`` of the scene).
    lod_ratio: float = DEFAULT_RATIO

    def __post_init__(self) -> None:
        # Instance-local memo (not a dataclass field: excluded from eq/hash
        # and from repr, and legal to mutate on a frozen instance).
        object.__setattr__(self, "_memo", {})

    def num_gaussians(self, scene: str, quick: bool, lod: int) -> int:
        """Gaussian count of ``scene``'s preset at detail level ``lod``."""
        key = ("gaussians", scene, quick, lod)
        cached = self._memo.get(key)
        if cached is None:
            preset = eval_preset(scene, quick=quick)
            if preset.store is not None:
                # Store-backed presets fix their own size; resolve through
                # the (cached) store rather than guessing from the scale
                # field.  This may build the base scene once.
                from repro.store.store import default_store

                base = default_store().get(preset.store).num_gaussians
            else:
                spec = scene_spec(preset.name)
                base = max(16, int(round(spec.base_num_gaussians * preset.scale)))
            cached = lod_keep_count(base, lod, self.lod_ratio)
            self._memo[key] = cached
        return cached

    def num_pixels(self, scene: str, quick: bool) -> int:
        """Pixels per frame of ``scene``'s preset."""
        key = ("pixels", scene, quick)
        cached = self._memo.get(key)
        if cached is None:
            preset = eval_preset(scene, quick=quick)
            width, height = scaled_image_size(
                scene_spec(preset.name), preset.image_scale
            )
            cached = width * height
            self._memo[key] = cached
        return cached

    def frame_ms(
        self,
        scene: str,
        quick: bool,
        lod: int,
        dtype: str = "float64",
        shards: int = 1,
    ) -> float:
        """Modeled render time of one frame work unit at detail ``lod``.

        With ``shards=1`` (the default) this is the whole frame, exactly as
        the pre-sharding model costed it.  With ``shards=s > 1`` it is the
        time of *one of the frame's s tile-range shards*: every shard pays
        the frame base (projection and pair building re-run per shard) plus
        a per-extra-shard coordination overhead, and does ``1/s`` of the
        blending work.  ``dtype="float32"`` scales the work terms by
        :attr:`float32_work_factor` (the fast path speeds up blending, not
        the fixed overheads).
        """
        shards = max(1, shards)
        key = ("frame_ms", scene, quick, lod, dtype, shards)
        cached = self._memo.get(key)
        if cached is None:
            work = (
                self.ms_per_kgaussian * self.num_gaussians(scene, quick, lod) / 1000.0
                + self.ms_per_kpixel * self.num_pixels(scene, quick) / 1000.0
            )
            if dtype == "float32":
                work *= self.float32_work_factor
            cached = (
                self.frame_base_ms
                + self.shard_overhead_ms * (shards - 1)
                + work / shards
            )
            self._memo[key] = cached
        return cached

    def dispatch_ms(self, request: Request, tier: Tier, quick: bool, warm: bool) -> float:
        """Modeled per-job dispatch overhead at ``tier``.

        A *cold* dispatch — the first touch of a ``(scene, lod, quant)``
        tier since the serving process started — pays the fixed cold
        overhead plus the tier's encoded-payload shipping cost; a *warm*
        dispatch runs against resident worker scenes and pays only the
        (much smaller) warm constant.
        """
        if warm:
            return self.dispatch_warm_ms
        ship_mb = self.ship_bytes(request.scene, quick, tier) / 1e6
        return self.dispatch_cold_ms + self.ship_ms_per_mb * ship_mb

    def ship_bytes(self, scene: str, quick: bool, tier: Tier) -> float:
        """Encoded payload bytes a *cold* dispatch of ``tier`` ships.

        This is the quantity cache-aware fleet routing minimises (and the
        per-tenant usage meter tallies): every first touch of a
        ``(scene, lod, quant)`` tier on an executor ships the tier's
        encoded scene; warm dispatches ship nothing.
        """
        lod, quant = tier[0], tier[1]
        gaussians = self.num_gaussians(scene, quick, lod)
        return quant_spec(quant).bytes_per_gaussian() * gaussians

    def job_ms(
        self,
        request: Request,
        tier: Tier,
        workers: int,
        quick: bool,
        warm: bool = False,
        shards: int = 1,
    ) -> float:
        """Modeled service time of ``request`` rendered at ``tier``.

        ``workers`` frame-parallel lanes render the job's work units —
        frames, or ``num_frames x shards`` tile-range shards when the
        dispatcher splits frames — in ``ceil(units / workers)`` waves on
        top of the warm/cold dispatch overhead (see :meth:`dispatch_ms`;
        ``warm=False`` is the conservative default and matches the
        pre-executor model, whose every dispatch was cold).  Sharding cuts
        the critical path of a job with fewer frames than lanes (the idle
        lanes take shards) at the cost of the per-shard overhead; at
        ``shards=1`` the pre-sharding cost is reproduced exactly.
        """
        shards = max(1, shards)
        units = request.num_frames * shards
        waves = math.ceil(units / max(1, workers))
        return self.dispatch_ms(request, tier, quick, warm) + waves * self.frame_ms(
            request.scene, quick, tier[0], dtype=tier_dtype(tier), shards=shards
        )


# ----------------------------------------------------------------------
# Policy and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerPolicy:
    """Capacity and queueing knobs of the scheduler."""

    #: Frame-parallel lanes of the serving farm (0/1 = sequential farm; the
    #: virtual clock models ``max(1, num_workers)`` lanes either way).
    num_workers: int = 1
    #: Admission bound on waiting requests (beyond it arrivals are rejected).
    max_queue: int = 64
    #: Shed when the cheapest-tier projection exceeds ``shed_slack x SLO``.
    shed_slack: float = 1.0
    dataflow: str = "tilewise"
    backend: str = "vectorized"
    #: Most tile-range shards the dispatcher may split one frame into to
    #: rescue a latency-critical request (1 = never shard, the historical
    #: behaviour).  Sharding costs no quality — shard outputs merge
    #: bitwise-exactly — so the dispatcher prefers it over rung demotion.
    max_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.shed_slack <= 0:
            raise ValueError("shed_slack must be positive")
        if self.dataflow not in DATAFLOWS:
            raise ValueError(f"dataflow must be one of {DATAFLOWS}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        if self.max_shards > 1 and self.dataflow != "tilewise":
            raise ValueError("max_shards > 1 requires the tilewise dataflow")

    @property
    def model_workers(self) -> int:
        """Lanes the virtual clock models (the sequential farm is one lane)."""
        return max(1, self.num_workers)


#: Terminal status of a request in a schedule.
OUTCOME_STATUSES: tuple[str, ...] = ("completed", "shed", "rejected")


@dataclass
class RequestOutcome:
    """What happened to one request, on both planes."""

    request: Request
    status: str
    #: Tier the request was served at (``None`` when never dispatched).
    tier: Tier | None = None
    #: Tile-range shards each frame was split into (1 = whole frames).
    shards: int = 1
    queue_wait_ms: float | None = None
    service_ms: float | None = None
    e2e_ms: float | None = None
    slo_met: bool = False
    #: Real farm wall time when the data plane executed (else ``None``).
    measured_wall_ms: float | None = None
    measured_frames: int = 0


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.array(values), q)) if values else 0.0


@dataclass
class ScheduleReport:
    """Aggregated result of one scheduler run over one workload."""

    spec: WorkloadSpec
    policy: SchedulerPolicy
    qos_policy: QoSPolicy
    ladder: tuple[Tier, ...]
    outcomes: list[RequestOutcome]
    log: EventLog
    executed: bool
    #: Real per-frame render latencies streamed off the executor (execute
    #: runs; completion order, frames of overlapping jobs interleaved).
    measured_frame_ms: list[float] = field(default_factory=list)
    #: Decision-plane dispatch warmth: how many dispatched jobs the service
    #: model costed cold (first touch of a ``(scene, lod, quant)`` tier)
    #: vs warm (tier already resident from an earlier dispatch).
    dispatch_counts: dict[str, int] = field(
        default_factory=lambda: {"cold": 0, "warm": 0}
    )
    #: Data-plane residency accounting aggregated off the executor
    #: (``None`` on virtual-only runs).
    data_plane: dict | None = None
    #: Per-run metrics registry (decision-plane counters/histograms:
    #: requests by status, dispatch warmth, per-tier served counts,
    #: queue-wait/service/e2e histograms).  ``None`` only for reports
    #: constructed by hand without a run.
    metrics: MetricsRegistry | None = None
    #: Fleet-mode accounting (placements, scale/failure/requeue counts,
    #: modeled ship bytes).  ``None`` on single-executor runs — the
    #: summary only grows fleet keys when a fleet actually ran, so the
    #: historical payload shape is byte-identically preserved.
    fleet: dict | None = None
    #: Per-tenant usage metering (fleet mode only; ``None`` otherwise).
    tenant_usage: dict | None = None

    # ------------------------------------------------------------------
    @property
    def completed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "completed"]

    @property
    def num_slo_met(self) -> int:
        return sum(1 for o in self.completed if o.slo_met)

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests that met their deadline."""
        done = self.completed
        return self.num_slo_met / len(done) if done else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests dropped rather than completed.

        Counts queue-full rejects, admission-time feasibility sheds *and*
        head-of-queue ``deadline_expired_in_queue`` sheds — every offered
        request that did not complete.
        """
        if not self.outcomes:
            return 0.0
        dropped = sum(1 for o in self.outcomes if o.status != "completed")
        return dropped / len(self.outcomes)

    @property
    def makespan_ms(self) -> float:
        """Virtual time from t=0 to the last completion (or last arrival)."""
        finish = [o.request.arrival_ms + (o.e2e_ms or 0.0) for o in self.outcomes]
        return max(finish) if finish else 0.0

    @property
    def goodput_rps(self) -> float:
        """SLO-met completions per second of virtual makespan."""
        span_s = self.makespan_ms / 1000.0
        return self.num_slo_met / span_s if span_s > 0 else 0.0

    def tier_histogram(self) -> dict[str, int]:
        """Dispatched requests per served tier (tier-name keyed, sorted).

        Served from the run's metrics registry (the per-tier counter the
        scheduler increments at each completion); reports built without a
        registry fall back to recounting the outcomes — both paths produce
        identical dicts.
        """
        if self.metrics is not None:
            return dict(
                sorted(
                    (labels["tier"], value)
                    for labels, value in self.metrics.labeled_values(
                        "repro_sched_tier_served_total"
                    )
                )
            )
        totals: dict[str, int] = {}
        for outcome in self.completed:
            key = tier_name(outcome.tier)
            totals[key] = totals.get(key, 0) + 1
        return dict(sorted(totals.items()))

    # ------------------------------------------------------------------
    def summary(self, include_events: bool = False) -> dict:
        """A JSON-serialisable report (the ``repro-sched`` CLI's payload)."""
        completed = self.completed
        e2e = [o.e2e_ms for o in completed]
        waits = [o.queue_wait_ms for o in completed]
        counts = {status: 0 for status in OUTCOME_STATUSES}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        payload = {
            "workload": {
                "arrival": self.spec.arrival,
                "rate_rps": self.spec.rate_rps,
                "duration_s": self.spec.duration_s,
                "num_clients": self.spec.num_clients,
                "scenes": list(self.spec.scenes),
                "zipf_s": self.spec.zipf_s,
                "frame_choices": list(self.spec.frame_choices),
                "slo_ms": self.spec.slo_ms,
                "seed": self.spec.seed,
            },
            "policy": {
                "num_workers": self.policy.num_workers,
                "max_queue": self.policy.max_queue,
                "shed_slack": self.policy.shed_slack,
                "dataflow": self.policy.dataflow,
                "backend": self.policy.backend,
                "max_shards": self.policy.max_shards,
                "adaptive": self.qos_policy.adaptive,
                "window": self.qos_policy.window,
                "ladder": [tier_name(tier) for tier in self.ladder],
            },
            "requests": {
                "offered": len(self.outcomes),
                "completed": counts["completed"],
                "shed": counts["shed"],
                "rejected": counts["rejected"],
            },
            "offered_rps": len(self.outcomes) / self.spec.duration_s,
            "goodput_rps": self.goodput_rps,
            "slo_attainment": self.slo_attainment,
            "shed_rate": self.shed_rate,
            "latency_ms": {
                "queue_wait_p50": _percentile(waits, 50),
                "queue_wait_p95": _percentile(waits, 95),
                "e2e_p50": _percentile(e2e, 50),
                "e2e_p95": _percentile(e2e, 95),
                "e2e_max": max(e2e) if e2e else 0.0,
            },
            "tier_histogram": self.tier_histogram(),
            "dispatch": dict(self.dispatch_counts),
            "decisions": self.log.counts(),
            "num_events": len(self.log),
            "makespan_s": self.makespan_ms / 1000.0,
            "executed": self.executed,
            "measured": (
                {
                    "frames": len(self.measured_frame_ms),
                    "frame_p50_ms": _percentile(self.measured_frame_ms, 50),
                    "frame_p95_ms": _percentile(self.measured_frame_ms, 95),
                    "data_plane": self.data_plane,
                }
                if self.executed
                else None
            ),
        }
        if self.fleet is not None:
            # Fleet keys appear only when a fleet ran: default
            # single-executor summaries (and their committed BENCH_*.json
            # baselines) keep the historical key set byte-for-byte.
            payload["fleet"] = dict(self.fleet)
            payload["tenant_usage"] = self.tenant_usage
        if include_events:
            payload["events"] = list(self.log.events)
        return payload


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class RequestScheduler:
    """Admission-controlled multi-tenant scheduler over the render farm.

    Parameters
    ----------
    policy:
        Capacity/queueing knobs (:class:`SchedulerPolicy`).
    qos:
        The :class:`~repro.sched.qos.SLOController` choosing tiers and
        shedding hopeless requests.  Defaults to an adaptive controller on
        the default ladder; pass a one-rung ladder (or
        ``QoSPolicy(adaptive=False)``) for a fixed-tier baseline.
    service_model:
        The deterministic :class:`ServiceModel` of the virtual clock.
    quick:
        Serve the reduced quick presets (tests, smoke runs).
    execute:
        Also render every dispatched job for real through the executor.
    farm:
        Legacy data-plane configuration: a
        :class:`~repro.serve.farm.RenderFarm` whose worker count, start
        method and scene format size the default executor.  Superseded by
        ``executor``.
    executor:
        The :class:`~repro.exec.executor.RenderExecutor` of the data
        plane.  Defaults (when ``execute=True``) to one sized by ``farm``
        if given, else by ``policy.num_workers``.  The scheduler keeps the
        executor across runs — that is the warm-pool point — and shuts an
        *owned* (default-built) executor down in :meth:`close`; a shared
        one is left to its owner.

    fleet:
        Optional :class:`~repro.fleet.FleetPolicy` generalising the
        control plane to N executors: cache-aware (or random /
        least-loaded) placement over per-executor warm state, optional
        autoscaling, weighted-fair tenant dispatch with quotas, and
        injected executor failures.  ``None`` (the default) runs the
        historical single-executor scheduler bitwise-identically; with a
        fleet, ``execute=True`` builds one named data-plane executor per
        fleet lane instead of a single shared one.

    Dispatched jobs are **submitted, not awaited**: the virtual-clock loop
    keeps scheduling while the executor overlaps jobs across its worker
    slots, and the measured results are drained after the loop.  Decisions
    never depend on data-plane timing, so replayability is untouched.
    """

    def __init__(
        self,
        policy: SchedulerPolicy | None = None,
        qos: SLOController | None = None,
        service_model: ServiceModel | None = None,
        quick: bool = False,
        execute: bool = False,
        farm: RenderFarm | None = None,
        executor: RenderExecutor | None = None,
        obs: ObsContext | None = None,
        fleet: FleetPolicy | None = None,
    ) -> None:
        self.policy = policy or SchedulerPolicy()
        #: Fleet shape/placement policy; ``None`` (the default) keeps the
        #: historical single-executor scheduler bitwise-identical.
        self.fleet_policy = fleet
        if fleet is not None and executor is not None:
            raise ValueError(
                "fleet mode builds one data-plane executor per fleet member; "
                "a shared single executor cannot be routed over"
            )
        #: Data-plane executors by fleet lane id (fleet + execute only);
        #: kept across runs — same warm-pool point as the single executor.
        self._data_executors: dict[int, RenderExecutor] = {}
        #: Fleet lane ids whose real executor was failure-injected down.
        self._killed_executors: set[int] = set()
        #: The latest run's router (fleet introspection/tests).
        self._router: FleetRouter | None = None
        #: Optional observability context: decision events are teed into
        #: the tracer as virtual-clock instants, completed requests become
        #: virtual request/queue_wait/service spans per client lane, and an
        #: owned executor inherits it for wall-clock data-plane tracing.
        #: Pure side-channel — decisions and logs are unchanged by it.
        self._obs = obs
        self.qos = qos if qos is not None else SLOController()
        if self.policy.dataflow != "tilewise" and any(
            tier_dtype(tier) != "float64" for tier in self.qos.ladder
        ):
            # Fail at construction, not at the first execute-mode dispatch:
            # the float32 fast path exists only in the tile-wise engine.
            raise ValueError(
                "float32 ladder tiers require the tilewise dataflow"
            )
        self.model = service_model or ServiceModel()
        self.quick = quick
        self.execute = execute
        self._owns_executor = False
        if execute and executor is None and fleet is None:
            executor = RenderExecutor(
                num_workers=farm.num_workers if farm is not None else self.policy.num_workers,
                mp_context=farm.mp_context if farm is not None else None,
                scene_format=farm.scene_format if farm is not None else "npz",
                obs=obs,
            )
            self._owns_executor = True
        self.executor = executor
        #: The active run's per-run registry (set by :meth:`run`); read by
        #: :meth:`live_metrics` so a scraper sees decision-plane counters
        #: while the run is still executing.
        self._run_metrics: MetricsRegistry | None = None

    def close(self) -> None:
        """Shut down executors this scheduler built for itself."""
        if self._owns_executor and self.executor is not None:
            self.executor.shutdown(wait=True)
        for lane_id, data_executor in sorted(self._data_executors.items()):
            if lane_id not in self._killed_executors:
                data_executor.shutdown(wait=True)

    def health(self) -> dict | None:
        """Live health of the data plane (None on virtual-only runs).

        Single-executor mode delegates to :meth:`RenderExecutor.health`
        — worker states from the report-only watchdog plus queue depth —
        unchanged.  Fleet mode aggregates *every* data-plane executor:
        summed pending tasks, worker states and replacements across the
        fleet, plus each member's full per-executor report under its
        ``executor-N`` name, so the telemetry server reports the whole
        fleet rather than assuming exactly one data plane.  Call before
        :meth:`close` (the pools' slots empty at shutdown).
        """
        if self.fleet_policy is None:
            return None if self.executor is None else self.executor.health()
        if not self._data_executors:
            return None
        members = {
            f"executor-{lane_id}": data_executor.health()
            for lane_id, data_executor in sorted(self._data_executors.items())
        }
        states: dict[str, int] = {}
        for report in members.values():
            for state, count in report["states"].items():
                states[state] = states.get(state, 0) + count
        return {
            "mode": "fleet",
            "num_executors": len(members),
            "pending_tasks": sum(r["pending_tasks"] for r in members.values()),
            "states": states,
            "workers_replaced": sum(
                r["workers_replaced"] for r in members.values()
            ),
            "executors": members,
        }

    def live_metrics(self) -> MetricsRegistry:
        """One merged registry of everything this scheduler can see *now*.

        Combines every data-plane executor's live merge (parent registry
        + latest per-worker snapshots + derived ratios) — all fleet
        members, not just one — the obs context's own registry on
        executor-less runs, and the active run's decision-plane counters.
        Built fresh per call into a throwaway registry — a pure read,
        safe to call from the telemetry server's scrape threads mid-run.
        """
        registry = MetricsRegistry()
        if self.executor is not None:
            registry.merge(self.executor.collect_metrics().snapshot())
        elif self._data_executors:
            # All fleet members share one obs registry: merge it once,
            # then fold in each member's per-worker snapshots (their
            # series are disjoint — worker labels carry the executor
            # name) so nothing double-counts.
            if self._obs is not None:
                registry.merge(self._obs.metrics.snapshot())
            for _, data_executor in sorted(self._data_executors.items()):
                for snapshot in data_executor.worker_metrics():
                    registry.merge(snapshot)
            hits = registry.value("repro_scene_cache_hits_total") or 0
            misses = registry.value("repro_scene_cache_misses_total") or 0
            if hits + misses:
                registry.gauge("repro_cache_hit_ratio").set(hits / (hits + misses))
        elif self._obs is not None:
            registry.merge(self._obs.metrics.snapshot())
        run_metrics = self._run_metrics
        if run_metrics is not None:
            registry.merge(run_metrics.snapshot())
        return registry

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, requests: list[Request], spec: WorkloadSpec) -> ScheduleReport:
        """Serve ``requests`` (a stream generated from ``spec``) to completion.

        Runs the event-driven virtual-clock loop: arrivals pass admission
        control into the priority/deadline queue, the (single-job-at-a-time,
        ``num_workers``-lane) farm serves them in EDF-within-priority order,
        and every completion feeds the SLO controller.  Returns the full
        :class:`ScheduleReport`; the decision log is
        ``report.log`` and is identical across same-seed runs.
        """
        # Every run starts from a clean controller (rung 0, empty window)
        # and a fresh decision log, so a reused scheduler instance replays
        # identical seeds into identical logs; read the run's events via
        # ``report.log``.
        self.qos.reset(EventLog())
        log = self.qos.log
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        # Per-run metrics registry: the report path (dispatch warmth split,
        # per-tier histogram, latency histograms) reads these series rather
        # than hand-rolled dicts.  Recording is a pure function of the
        # decision sequence, so replayability is untouched.
        run_metrics = MetricsRegistry()
        self._run_metrics = run_metrics
        if tracer is not None:
            # Tee every decision event into the trace as a virtual-clock
            # instant on the scheduler lane.  The sink sees the exact entry
            # the log appends — the log itself (and its replay) unchanged.
            log.add_sink(
                lambda entry: tracer.instant(
                    entry["event"],
                    lane="scheduler",
                    t_ms=entry["t_ms"],
                    clock=VIRTUAL,
                    attrs={k: v for k, v in entry.items() if k not in ("t_ms", "event")},
                )
            )
        outcomes: dict[int, RequestOutcome] = {}
        measured_frame_ms: list[float] = []
        #: Data-plane job handles awaiting drain (submit order).
        pending_handles: list[tuple[RequestOutcome, object]] = []
        # Warm/cold state of the virtual clock: the (scene, lod, quant)
        # tiers dispatched at least once since this run started.  Purely a
        # function of the decision sequence, so replayability is preserved.
        # (In fleet mode this stays the *union* across executors — the
        # optimistic admission view — while each lane keeps its own
        # first-touch set for placement and service costing.)
        self._touched = set()

        # Fleet mode: a fresh router per run (same reset discipline as the
        # QoS controller, so a reused scheduler replays identically), plus
        # the autoscaler, fairness and metering state that ride on it.
        fleet_policy = self.fleet_policy
        router: FleetRouter | None = None
        autoscaler: Autoscaler | None = None
        fair: FairQueue | None = None
        usage: UsageMeter | None = None
        if fleet_policy is not None:
            router = FleetRouter(fleet_policy)
            self._router = router
            if fleet_policy.autoscale is not None:
                autoscaler = Autoscaler(fleet_policy.autoscale)
            if fleet_policy.fair:
                fair = FairQueue(fleet_policy.tenant_weights)
            usage = UsageMeter()
        #: WFQ system virtual time: the served tenant's tag at the last
        #: fair dispatch; re-activating tenants are floored to it.
        fair_floor = 0.0
        #: Monotonic dispatch ids; an executor failure voids the id its
        #: in-flight request was dispatched under, which cancels the
        #: already-heaped completion event (heap entries can't be removed).
        dispatch_seq = 0
        voided: set[int] = set()
        fleet_stats = {
            "placements": {},
            "scale_ups": 0,
            "scale_downs": 0,
            "failures": 0,
            "requeues": 0,
        }

        # Event heap: (time, sequence, kind, payload).  Sequence breaks
        # ties deterministically: arrivals are pre-pushed with the lowest
        # sequence numbers, so at an exact time tie an arrival is handled
        # *before* a completion — the conservative order (the arrival sees
        # the server still busy and the queue still full).
        events: list[tuple[float, int, str, object]] = []
        seq = 0
        for request in requests:
            heapq.heappush(events, (request.arrival_ms, seq, "arrive", request))
            seq += 1
        arrivals_remaining = len(requests)
        if fleet_policy is not None:
            # Injected executor failures and the first autoscaler tick are
            # pre-seeded virtual-clock events like the arrivals — pure
            # functions of the configuration, replayable by construction.
            for fail_ms, fail_executor in fleet_policy.failures:
                heapq.heappush(
                    events, (float(fail_ms), seq, "fail", int(fail_executor))
                )
                seq += 1
            if autoscaler is not None:
                heapq.heappush(
                    events,
                    (fleet_policy.autoscale.interval_ms, seq, "autoscale", None),
                )
                seq += 1

        # Waiting queue: (priority, absolute deadline, sequence, request) —
        # strict priority classes, EDF within a class.
        queue: list[tuple[int, float, int, Request]] = []
        busy = False
        running_until = 0.0

        def queued_backlog_ms(request: Request) -> float:
            """Drain cost of the queued work that outranks ``request``.

            Two choices keep the admission projection honest.  First, only
            the queue entries that would actually be served *before* the
            arriving request count — higher priority class, or same class
            with an earlier-or-equal deadline; the whole-queue sum would
            shed a premium request behind a deep standard-tenant queue the
            dispatcher is about to jump it over.  Second, the backlog is
            costed at the tier jobs will actually be served at (the
            controller's *current* tier, not the cheapest one): early in an
            overload episode the controller is still on an expensive rung,
            and a cheapest-tier estimate would admit requests whose real
            wait already dooms them.
            """
            tier = self.qos.current_tier
            return sum(
                self._job_cost(r, tier)
                for priority, deadline, _, r in queue
                if priority < request.priority
                or (priority == request.priority and deadline <= request.deadline_ms)
            )

        def service_order() -> list[int]:
            """Queue indices in the order the fleet would serve them.

            Without fairness this is the heap's own (priority, deadline,
            sequence) order — index 0 first, exactly the entry the legacy
            loop would pop.  Weighted-fair mode puts the tenant with the
            smallest WFQ virtual tag first, EDF within a tenant.
            """
            if fair is not None:
                return sorted(
                    range(len(queue)),
                    key=lambda i: (
                        fair.tag(queue[i][3].client_id),
                        queue[i][0],
                        queue[i][1],
                        queue[i][2],
                    ),
                )
            return sorted(
                range(len(queue)),
                key=lambda i: (queue[i][0], queue[i][1], queue[i][2]),
            )

        def remove_queue_entry(pos: int) -> None:
            """Remove the queue entry at ``pos`` keeping the heap valid.

            The head (the common case — and the *only* case on a one-
            executor, non-fair fleet) pops exactly like the legacy loop;
            a mid-heap removal swaps the tail in and re-heapifies.
            """
            if pos == 0:
                heapq.heappop(queue)
            else:
                queue[pos] = queue[-1]
                queue.pop()
                heapq.heapify(queue)

        def shed_queued(now: float, pos: int, reason: str, **extra) -> None:
            """Shed the queued request at ``pos`` (hopeless or over quota)."""
            request = queue[pos][3]
            remove_queue_entry(pos)
            outcome = outcomes[request.request_id]
            outcome.status = "shed"
            outcome.queue_wait_ms = now - request.arrival_ms
            log.emit(
                now,
                "shed",
                request=request.request_id,
                client=request.client_id,
                reason=reason,
                queue_wait_ms=round(outcome.queue_wait_ms, 3),
                **extra,
            )
            run_metrics.counter(
                "repro_sched_requests_total", {"status": "shed"}
            ).inc()

        def serve_on_lane(
            now: float, pos: int, lane, tier, shards: int, demoted_from
        ) -> None:
            """Dispatch the queued request at ``pos`` onto ``lane``.

            The fleet twin of :meth:`_serve_or_shed`'s serve half: the
            same event shape and accounting, plus the ``executor`` field,
            per-lane warmth (service is costed against *this* executor's
            first-touch set, not the fleet union) and tenant metering.
            """
            nonlocal seq, dispatch_seq, fair_floor
            request = queue[pos][3]
            remove_queue_entry(pos)
            key = (request.scene, self._scene_tier(tier))
            warm = key in lane.touched
            service_ms = self._job_cost(request, tier, shards, warm=warm)
            wait_ms = now - request.arrival_ms
            outcome = outcomes[request.request_id]
            entry = {
                "request": request.request_id,
                "client": request.client_id,
                "scene": request.scene,
                "tier": tier_name(tier),
                "warm": warm,
                "queue_wait_ms": round(wait_ms, 3),
                "service_ms": round(service_ms, 3),
            }
            if shards > 1:
                entry["shards"] = shards
            if demoted_from is not None:
                entry["demoted_from"] = tier_name(demoted_from)
            entry["executor"] = lane.name
            log.emit(now, "dispatch", **entry)
            run_metrics.counter(
                "repro_sched_dispatch_total", {"warmth": "warm" if warm else "cold"}
            ).inc()
            run_metrics.counter(
                "repro_sched_fleet_dispatch_total", {"executor": lane.name}
            ).inc()
            self._touched.add(key)
            lane.touched.add(key)
            outcome.tier = tier
            outcome.shards = shards
            outcome.queue_wait_ms = wait_ms
            outcome.service_ms = service_ms
            ship_bytes = (
                0 if warm else int(round(self.model.ship_bytes(request.scene, self.quick, tier)))
            )
            usage.record_dispatch(
                request.client_id,
                service_ms * self.policy.model_workers,
                ship_bytes,
            )
            if fair is not None:
                fair_floor = fair.tag(request.client_id)
                fair.charge(request.client_id, service_ms)
            fleet_stats["placements"][lane.name] = (
                fleet_stats["placements"].get(lane.name, 0) + 1
            )
            lane.busy = True
            lane.busy_until = now + service_ms
            lane.jobs += 1
            lane.worker_ms += service_ms
            lane.inflight = request
            lane.dispatch_id = dispatch_seq
            heapq.heappush(
                events,
                (lane.busy_until, seq, "complete", (request, dispatch_seq, lane)),
            )
            seq += 1
            dispatch_seq += 1
            if self.execute:
                self._execute(
                    request,
                    tier,
                    shards,
                    outcome,
                    measured_frame_ms,
                    pending_handles,
                    executor_id=lane.executor_id,
                )

        def fleet_dispatch(now: float) -> None:
            """One placement pass: match free lanes against the queue.

            Walks the queue in service order and, per entry: late-sheds
            the hopeless, quota-sheds over-budget tenants, then asks the
            router for a lane.  A ``None`` placement is a *deferral* —
            affinity judged waiting for the warm preferred executor
            cheaper than dispatching cold now — and the scan moves on, so
            a later request may still take the free lane.  Every action
            restarts the pass (the queue and lane set changed); a full
            scan with no action ends dispatch until the next event.
            """
            while queue:
                if not router.free_lanes(now):
                    return
                acted = False
                for pos in service_order():
                    request = queue[pos][3]
                    tier, shards, demoted_from = self._dispatch_tier(request, now)
                    plan_ms = self._job_cost(request, tier, shards)
                    slack_ms = request.deadline_ms - now
                    if self.qos.policy.adaptive and plan_ms > slack_ms:
                        shed_queued(
                            now,
                            pos,
                            "deadline_expired_in_queue",
                            cheapest_service_ms=round(plan_ms, 3),
                            slo_ms=request.slo_ms,
                        )
                        acted = True
                        break
                    if fleet_policy.tenant_quota is not None and usage.over_quota(
                        request.client_id,
                        plan_ms * self.policy.model_workers,
                        fleet_policy.tenant_quota,
                    ):
                        shed_queued(
                            now,
                            pos,
                            "quota_exceeded",
                            quota=fleet_policy.tenant_quota,
                            slo_ms=request.slo_ms,
                        )
                        acted = True
                        break
                    key = (request.scene, self._scene_tier(tier))
                    lane = router.place(
                        key,
                        request,
                        now,
                        slack_ms,
                        cost=lambda l, _k=key, _r=request, _t=tier, _s=shards: (
                            self.model.job_ms(
                                _r,
                                _t,
                                self.policy.model_workers,
                                self.quick,
                                warm=_k in l.touched,
                                shards=_s,
                            )
                        ),
                    )
                    if lane is None:
                        continue
                    serve_on_lane(now, pos, lane, tier, shards, demoted_from)
                    acted = True
                    break
                if not acted:
                    return

        def dispatch(now: float) -> None:
            nonlocal busy, seq, running_until
            if router is not None:
                fleet_dispatch(now)
                return
            while not busy and queue:
                _, _, _, request = heapq.heappop(queue)
                if self._serve_or_shed(
                    now, request, outcomes, measured_frame_ms, pending_handles, log
                ):
                    busy = True
                    running_until = now + outcomes[request.request_id].service_ms
                    heapq.heappush(events, (running_until, seq, "complete", request))
                    seq += 1

        def complete_request(now: float, request: Request, fleet_lane=None) -> None:
            """Shared completion bookkeeping of both planes' loops.

            Identical to the historical single-executor sequence; a fleet
            completion additionally stamps the serving executor on the
            event, meters the tenant's frames, and records a virtual
            service span on the executor's decision-plane lane.
            """
            outcome = outcomes[request.request_id]
            outcome.status = "completed"
            outcome.e2e_ms = now - request.arrival_ms
            outcome.slo_met = outcome.e2e_ms <= request.slo_ms
            fields = {
                "request": request.request_id,
                "client": request.client_id,
                "tier": tier_name(outcome.tier),
                "e2e_ms": round(outcome.e2e_ms, 3),
                "slo_met": outcome.slo_met,
            }
            if fleet_lane is not None:
                fields["executor"] = fleet_lane.name
            log.emit(now, "complete", **fields)
            run_metrics.counter(
                "repro_sched_requests_total", {"status": "completed"}
            ).inc()
            run_metrics.counter(
                "repro_sched_tier_served_total", {"tier": tier_name(outcome.tier)}
            ).inc()
            run_metrics.histogram("repro_sched_queue_wait_ms").observe(
                outcome.queue_wait_ms
            )
            run_metrics.histogram("repro_sched_service_ms").observe(
                outcome.service_ms
            )
            run_metrics.histogram("repro_sched_e2e_ms").observe(outcome.e2e_ms)
            if fleet_lane is not None:
                usage.record_frames(request.client_id, request.num_frames)
            if tracer is not None:
                # Virtual-clock span chain per client lane, recorded
                # *from* already-decided quantities at completion time.
                lane = f"client-{request.client_id}"
                span_id = tracer.record(
                    "request",
                    lane=lane,
                    clock=VIRTUAL,
                    t0_ms=request.arrival_ms,
                    dur_ms=outcome.e2e_ms,
                    attrs={
                        "request": request.request_id,
                        "scene": request.scene,
                        "tier": tier_name(outcome.tier),
                        "slo_met": outcome.slo_met,
                    },
                )
                tracer.record(
                    "queue_wait",
                    lane=lane,
                    clock=VIRTUAL,
                    t0_ms=request.arrival_ms,
                    dur_ms=outcome.queue_wait_ms,
                    parent=span_id,
                )
                tracer.record(
                    "service",
                    lane=lane,
                    clock=VIRTUAL,
                    t0_ms=request.arrival_ms + outcome.queue_wait_ms,
                    dur_ms=outcome.service_ms,
                    parent=span_id,
                )
                if fleet_lane is not None:
                    # Mirror the service window onto the executor's own
                    # virtual lane — the fleet-placement view of the trace
                    # (`repro-obs` reconciles the routing headline off it).
                    tracer.record(
                        "service",
                        lane=fleet_lane.name,
                        clock=VIRTUAL,
                        t0_ms=now - outcome.service_ms,
                        dur_ms=outcome.service_ms,
                        attrs={
                            "request": request.request_id,
                            "scene": request.scene,
                            "tier": tier_name(outcome.tier),
                        },
                    )
            self.qos.observe(now, outcome.e2e_ms, request.slo_ms)
            dispatch(now)

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == "arrive":
                request = payload
                arrivals_remaining -= 1
                outcome = RequestOutcome(request=request, status="rejected")
                outcomes[request.request_id] = outcome
                if len(queue) >= self.policy.max_queue:
                    log.emit(
                        now,
                        "reject",
                        request=request.request_id,
                        client=request.client_id,
                        reason="queue_full",
                        queue_depth=len(queue),
                    )
                    run_metrics.counter(
                        "repro_sched_requests_total", {"status": "rejected"}
                    ).inc()
                    dispatch(now)
                    continue
                # Feasibility projects the cheapest rung at its best shard
                # count — with max_shards=1 exactly the unsharded cost.
                _, cheapest_ms = self._best_shards(request, self.qos.cheapest_tier)
                if router is None:
                    pending_ms = (running_until - now) if busy else 0.0
                    projected_ms = (
                        pending_ms + queued_backlog_ms(request) + cheapest_ms
                    )
                else:
                    # Fleet projection: the soonest any lane frees, plus the
                    # out-ranking backlog spread over the fleet.  On a
                    # one-executor fleet both terms reduce float-exactly to
                    # the single-server arithmetic above.
                    pending_ms = max(0.0, router.earliest_free_ms(now) - now)
                    projected_ms = (
                        pending_ms
                        + queued_backlog_ms(request) / max(1, len(router.lanes))
                        + cheapest_ms
                    )
                if self.qos.should_shed(
                    projected_ms, request.slo_ms * self.policy.shed_slack
                ):
                    outcome.status = "shed"
                    log.emit(
                        now,
                        "shed",
                        request=request.request_id,
                        client=request.client_id,
                        reason="deadline_infeasible",
                        projected_ms=round(projected_ms, 3),
                        slo_ms=request.slo_ms,
                        cheapest_tier=tier_name(self.qos.cheapest_tier),
                    )
                    run_metrics.counter(
                        "repro_sched_requests_total", {"status": "shed"}
                    ).inc()
                    dispatch(now)
                    continue
                outcome.status = "admitted"
                log.emit(
                    now,
                    "admit",
                    request=request.request_id,
                    client=request.client_id,
                    priority=request.priority,
                    queue_depth=len(queue),
                )
                if fair is not None:
                    # WFQ re-activation: floor the tenant's tag to the
                    # system virtual time so idle tenants can't bank credit.
                    fair.activate(request.client_id, fair_floor)
                heapq.heappush(
                    queue, (request.priority, request.deadline_ms, seq, request)
                )
                seq += 1
                dispatch(now)
            elif kind == "complete":
                if router is None:
                    request = payload
                    busy = False
                    complete_request(now, request)
                    continue
                request, completed_dispatch, lane = payload
                if completed_dispatch in voided:
                    # The executor serving this dispatch failed mid-flight;
                    # the request was requeued then.  Drop the stale event.
                    voided.discard(completed_dispatch)
                    continue
                lane.busy = False
                lane.inflight = None
                lane.dispatch_id = None
                complete_request(now, request, fleet_lane=lane)
            elif kind == "autoscale":
                work_left = (
                    arrivals_remaining > 0
                    or bool(queue)
                    or any(l.busy for l in router.active())
                )
                if not work_left:
                    continue  # workload drained: let the event heap empty
                current_tier = self.qos.current_tier
                backlog_ms = sum(
                    self._job_cost(r, current_tier) for _, _, _, r in queue
                ) / max(1, len(router.lanes))
                actions = autoscaler.evaluate(
                    now, len(queue), backlog_ms, spec.slo_ms, router
                )
                for action, executor_id, reason in actions:
                    if action == "scale_up":
                        fleet_stats["scale_ups"] += 1
                        new_lane = router.lanes[executor_id]
                        log.emit(
                            now,
                            "scale_up",
                            executor=new_lane.name,
                            reason=reason,
                            available_at_ms=round(new_lane.available_at, 3),
                            executors=len(router.lanes),
                            queue_depth=len(queue),
                        )
                        # Wake the dispatcher the instant the cold start
                        # finishes — a completion may not coincide with it.
                        heapq.heappush(
                            events, (new_lane.available_at, seq, "wake", None)
                        )
                        seq += 1
                    else:
                        fleet_stats["scale_downs"] += 1
                        log.emit(
                            now,
                            "scale_down",
                            executor=f"executor-{executor_id}",
                            reason=reason,
                            executors=len(router.lanes),
                            queue_depth=len(queue),
                        )
                    run_metrics.counter(
                        "repro_sched_fleet_scale_total",
                        {"direction": "up" if action == "scale_up" else "down"},
                    ).inc()
                run_metrics.gauge("repro_sched_fleet_executors").set(
                    len(router.lanes)
                )
                dispatch(now)
                heapq.heappush(
                    events,
                    (
                        now + fleet_policy.autoscale.interval_ms,
                        seq,
                        "autoscale",
                        None,
                    ),
                )
                seq += 1
            elif kind == "wake":
                dispatch(now)
            else:  # fail — injected executor failure
                executor_id = payload
                lane = router.lanes.get(executor_id)
                if lane is None:
                    # Already drained/failed (or never existed) — record the
                    # no-op so the injected scenario stays visible in the log.
                    log.emit(
                        now,
                        "executor_fail",
                        executor=f"executor-{executor_id}",
                        known=False,
                    )
                    continue
                router.remove_lane(executor_id)
                fleet_stats["failures"] += 1
                inflight = lane.inflight if lane.busy else None
                if inflight is not None:
                    voided.add(lane.dispatch_id)
                log.emit(
                    now,
                    "executor_fail",
                    executor=lane.name,
                    in_flight=None if inflight is None else inflight.request_id,
                    executors=len(router.lanes),
                )
                if inflight is not None:
                    # Reuse the crash-recovery discipline: the in-flight
                    # request goes back to the queue and is re-routed to a
                    # surviving executor; the dead lane's warm set is lost.
                    heapq.heappush(
                        queue,
                        (inflight.priority, inflight.deadline_ms, seq, inflight),
                    )
                    seq += 1
                    log.emit(
                        now,
                        "requeue",
                        request=inflight.request_id,
                        client=inflight.client_id,
                        executor=lane.name,
                        reason="executor_failed",
                    )
                    fleet_stats["requeues"] += 1
                    run_metrics.counter("repro_sched_fleet_requeue_total").inc()
                run_metrics.counter("repro_sched_fleet_failures_total").inc()
                run_metrics.gauge("repro_sched_fleet_executors").set(
                    len(router.lanes)
                )
                if self.execute:
                    dead = self._data_executors.get(executor_id)
                    if dead is not None:
                        # Abort, don't drain: unfinished handles fail and
                        # the measured drain below skips them.
                        dead.shutdown(wait=False)
                    self._killed_executors.add(executor_id)
                if not router.lanes and autoscaler is None:
                    raise RuntimeError(
                        "executor failure emptied the fleet and no autoscaler "
                        "is configured to replace it"
                    )
                dispatch(now)

        # Drain the data plane: the virtual loop submitted jobs without
        # waiting (they overlap across the executor's worker slots); their
        # measured results land on the outcomes only now, after every
        # decision has been made, so timing noise cannot leak into replays.
        data_plane = None
        if pending_handles:
            residency = {"cache_hits": 0, "cache_misses": 0, "ship_bytes": 0, "loaded_bytes": 0}
            for outcome, handle, handle_executor in pending_handles:
                if (
                    handle_executor is not None
                    and handle_executor in self._killed_executors
                ):
                    # The failure injection aborted this executor; its
                    # unfinished handles fail by design.  Finished ones
                    # still count (the work really rendered).
                    try:
                        result = handle.result()
                    except Exception:
                        continue
                else:
                    result = handle.result()
                outcome.measured_wall_ms = result.wall_seconds * 1000.0
                outcome.measured_frames = result.num_frames
                residency["cache_hits"] += result.cache_hits
                residency["cache_misses"] += result.cache_misses
                residency["ship_bytes"] += result.ship_bytes
                residency["loaded_bytes"] += result.loaded_bytes
            data_plane = residency
        elif self.execute:
            data_plane = {"cache_hits": 0, "cache_misses": 0, "ship_bytes": 0, "loaded_bytes": 0}

        ordered = [outcomes[r.request_id] for r in requests]
        assert all(o.status in OUTCOME_STATUSES for o in ordered)
        # The report's warmth split materialises from the registry (same
        # {"cold": .., "warm": ..} shape as the historical hand-rolled
        # dict, so summaries and their JSON stay byte-identical).
        dispatch_counts = {
            "cold": run_metrics.value("repro_sched_dispatch_total", {"warmth": "cold"})
            or 0,
            "warm": run_metrics.value("repro_sched_dispatch_total", {"warmth": "warm"})
            or 0,
        }
        if obs is not None:
            obs.metrics.merge(run_metrics.snapshot())
        fleet_summary = None
        tenant_usage = None
        if router is not None:
            fleet_summary = {
                "routing": fleet_policy.routing,
                "executors_initial": fleet_policy.num_executors,
                "executors_final": len(router.lanes),
                "executors_peak": router.peak_executors,
                "autoscale": fleet_policy.autoscale is not None,
                "fair": fleet_policy.fair,
                "scale_ups": fleet_stats["scale_ups"],
                "scale_downs": fleet_stats["scale_downs"],
                "failures": fleet_stats["failures"],
                "requeues": fleet_stats["requeues"],
                #: Modeled cold-dispatch payload bytes across the fleet —
                #: the quantity cache-aware routing minimises.
                "ship_bytes": usage.total_ship_bytes,
                "placements": dict(sorted(fleet_stats["placements"].items())),
            }
            tenant_usage = usage.summary()
        return ScheduleReport(
            spec=spec,
            policy=self.policy,
            qos_policy=self.qos.policy,
            ladder=self.qos.ladder,
            outcomes=ordered,
            log=log,
            executed=self.execute,
            measured_frame_ms=measured_frame_ms,
            dispatch_counts=dispatch_counts,
            data_plane=data_plane,
            metrics=run_metrics,
            fleet=fleet_summary,
            tenant_usage=tenant_usage,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _scene_tier(tier: Tier) -> tuple:
        """The residency key of a tier: its ``(lod, quant)`` scene tier.

        Warmth (and the executor's worker caches) key on the *scene* tier
        only — a float32 dispatch renders the same resident scene the
        float64 tier shipped, so it must not be costed cold again.  For the
        historical two-element tiers this is the tier itself.
        """
        return (tier[0], tier[1])

    def _job_cost(
        self,
        request: Request,
        tier: Tier,
        shards: int = 1,
        warm: bool | None = None,
    ) -> float:
        """Modeled service time of ``request`` at ``tier``, warmth-aware.

        A tier dispatched earlier in this run is *warm* — its payload is
        already encoded, shipped and decoded in the (modeled) executor — so
        the virtual clock charges only the warm dispatch constant.  The
        warmth state is a pure function of the decision sequence, keeping
        the clock replayable.  (The model tracks first-touch per
        deployment, not per worker slot — the conservative simplification
        of the executor's per-worker residency.)  Fleet mode passes
        ``warm`` explicitly: service is costed against the *routed
        executor's* first-touch set, while the default (union) warmth
        keeps serving admission and tier planning.
        """
        if warm is None:
            warm = (request.scene, self._scene_tier(tier)) in self._touched
        return self.model.job_ms(
            request,
            tier,
            self.policy.model_workers,
            self.quick,
            warm=warm,
            shards=shards,
        )

    def _best_shards(self, request: Request, tier: Tier) -> tuple[int, float]:
        """The shard count minimising ``request``'s modeled cost at ``tier``.

        Walks shard counts upward from 1 while the model keeps improving
        (sharding stops paying once the per-shard overhead outweighs the
        spread across idle lanes) and never exceeds ``policy.max_shards``.
        Returns ``(shards, cost)``; with ``max_shards=1`` this is always
        ``(1, unsharded cost)``.
        """
        best_shards, best_cost = 1, self._job_cost(request, tier)
        for shards in range(2, self.policy.max_shards + 1):
            cost = self._job_cost(request, tier, shards)
            if cost >= best_cost:
                break
            best_shards, best_cost = shards, cost
        return best_shards, best_cost

    def _serve_or_shed(
        self,
        now: float,
        request: Request,
        outcomes: dict[int, RequestOutcome],
        measured_frame_ms: list[float],
        pending_handles: list,
        log: EventLog,
    ) -> bool:
        """Serve one popped request, or late-shed it when it became hopeless.

        Returns ``True`` when the request occupies the server (a
        ``dispatch`` event was emitted and the outcome holds the service
        time), ``False`` when it was shed at the head of the queue: an
        *adaptive* controller consults the cost model here and drops a
        request whose remaining slack no longer fits even the cheapest
        ladder rung — serving it would spend capacity on a guaranteed SLO
        miss while everything behind it waits.  The fixed-tier baseline
        serves blindly (no demotion, no late shed); its misses are the
        point of the comparison.
        """
        tier, shards, demoted_from = self._dispatch_tier(request, now)
        warm = (request.scene, self._scene_tier(tier)) in self._touched
        service_ms = self._job_cost(request, tier, shards)
        wait_ms = now - request.arrival_ms
        outcome = outcomes[request.request_id]
        slack_ms = request.deadline_ms - now
        if self.qos.policy.adaptive and service_ms > slack_ms:
            outcome.status = "shed"
            outcome.queue_wait_ms = wait_ms
            log.emit(
                now,
                "shed",
                request=request.request_id,
                client=request.client_id,
                reason="deadline_expired_in_queue",
                queue_wait_ms=round(wait_ms, 3),
                cheapest_service_ms=round(service_ms, 3),
                slo_ms=request.slo_ms,
            )
            self._run_metrics.counter(
                "repro_sched_requests_total", {"status": "shed"}
            ).inc()
            return False
        entry = {
            "request": request.request_id,
            "client": request.client_id,
            "scene": request.scene,
            "tier": tier_name(tier),
            "warm": warm,
            "queue_wait_ms": round(wait_ms, 3),
            "service_ms": round(service_ms, 3),
        }
        if shards > 1:
            # Whole-frame dispatches keep their historical event shape —
            # the field appears only when the dispatcher actually sharded,
            # so pre-sharding decision logs replay byte-identically.
            entry["shards"] = shards
        if demoted_from is not None:
            entry["demoted_from"] = tier_name(demoted_from)
        log.emit(now, "dispatch", **entry)
        self._run_metrics.counter(
            "repro_sched_dispatch_total", {"warmth": "warm" if warm else "cold"}
        ).inc()
        self._touched.add((request.scene, self._scene_tier(tier)))
        outcome.tier = tier
        outcome.shards = shards
        outcome.queue_wait_ms = wait_ms
        outcome.service_ms = service_ms
        if self.execute:
            self._execute(
                request, tier, shards, outcome, measured_frame_ms, pending_handles
            )
        return True

    def _dispatch_tier(
        self, request: Request, now: float
    ) -> tuple[Tier, int, Tier | None]:
        """The (tier, shards) plan ``request`` is served with.

        Serving starts from the controller's current rung and walks a
        two-dimensional plan only as far as the request's remaining
        deadline slack requires.  At each rung the dispatcher first tries
        *sharding* — splitting frames into tile-range shards spreads one
        request over idle lanes at **zero quality cost** (shard outputs
        merge bitwise-exactly) — and only when even the best shard count
        cannot make the deadline does it *demote* to the next (cheaper,
        lower-fidelity) rung, unsharded first.  A request whose wait ate
        most of its budget therefore renders sharded-but-full-quality when
        lanes can save it, and cheap only when they cannot.  With
        ``max_shards=1`` the walk degenerates to the historical
        rung-demotion loop.

        If even the cheapest rung at its best shard count cannot make the
        deadline this method still returns that plan — the caller,
        :meth:`_serve_or_shed`, decides the request's fate (an adaptive
        controller sheds it there; the fixed baseline serves blindly and
        records the miss).

        Returns ``(tier, shards, demoted_from)`` where ``demoted_from`` is
        the controller's rung when demotion happened, else ``None``.

        Demotion and sharding are *adaptive* behaviours: a
        ``QoSPolicy(adaptive=False)`` controller serves every request
        whole-frame at its pinned rung no matter the slack (that is what
        makes it the fixed-tier baseline), exactly as a one-rung ladder
        would.
        """
        if not self.qos.policy.adaptive:
            return self.qos.current_tier, 1, None
        ladder = self.qos.ladder
        slack_ms = request.deadline_ms - now
        start = ladder[self.qos.rung]
        plan: tuple[Tier, int] | None = None
        for rung in range(self.qos.rung, len(ladder)):
            tier = ladder[rung]
            if self._job_cost(request, tier) <= slack_ms:
                plan = (tier, 1)
                break
            best_shards, best_cost = self._best_shards(request, tier)
            if best_cost <= slack_ms:
                plan = (tier, best_shards)
                break
        if plan is None:
            # Nothing fits: hand back the cheapest plan the ladder has and
            # let the caller shed (adaptive) or serve blindly (fixed).
            plan = (ladder[-1], self._best_shards(request, ladder[-1])[0])
        tier, shards = plan
        return tier, shards, (start if tier != start else None)

    def build_job(self, request: Request, tier: Tier, shards: int = 1) -> RenderJob:
        """The concrete farm job serving ``request`` at ``tier``.

        The decision plane's whole plan crosses into the data plane here:
        the tier's scene ``(lod, quant)``, its engine ``dtype`` and the
        dispatcher's shard count all land on the
        :class:`~repro.serve.trajectories.RenderJob`, so an executed
        schedule renders exactly what the virtual clock costed.
        """
        trajectory = make_trajectory(
            request.trajectory_kind,
            num_frames=request.num_frames,
            view_index=request.view_index,
            seed=request.traj_seed,
        )
        return RenderJob(
            scene=request.scene,
            trajectory=trajectory,
            quick=self.quick,
            dataflow=self.policy.dataflow,
            backend=self.policy.backend,
            lod=tier[0],
            quant=tier[1],
            shards=max(1, shards),
            dtype=tier_dtype(tier),
        )

    def _fleet_data_executor(self, lane_id: int) -> RenderExecutor:
        """The real executor mirroring fleet lane ``lane_id`` (lazy).

        One named :class:`RenderExecutor` per decision-plane lane, kept
        across runs (the warm-pool point) and rebuilt fresh if a failure
        injection killed the previous incumbent — the data-plane analogue
        of the executor's own worker replacement.
        """
        data_executor = self._data_executors.get(lane_id)
        if data_executor is None or lane_id in self._killed_executors:
            data_executor = RenderExecutor(
                num_workers=self.policy.num_workers,
                name=f"executor-{lane_id}",
                obs=self._obs,
            )
            self._data_executors[lane_id] = data_executor
            self._killed_executors.discard(lane_id)
        return data_executor

    def _execute(
        self,
        request: Request,
        tier: Tier,
        shards: int,
        outcome: RequestOutcome,
        measured_frame_ms: list[float],
        pending_handles: list,
        executor_id: int | None = None,
    ) -> None:
        """Data plane: submit the dispatched job to the executor.

        The handle is queued, not awaited — the executor overlaps frames
        of every in-flight job across its worker slots (a sequential
        executor simply completes the handle synchronously), and the run
        loop drains all handles after the last virtual-clock event.
        Per-frame latencies stream back through ``on_frame`` as frames
        really complete.  In fleet mode ``executor_id`` routes the job to
        the lane's own named executor instead of the single shared one.
        """
        target = (
            self.executor
            if executor_id is None
            else self._fleet_data_executor(executor_id)
        )
        handle = target.submit(
            self.build_job(request, tier, shards),
            on_frame=lambda record: measured_frame_ms.append(record.render_ms),
            trace={
                "request": request.request_id,
                "client": request.client_id,
                "tier": tier_name(tier),
            },
        )
        pending_handles.append((outcome, handle, executor_id))


def run_workload(
    spec: WorkloadSpec,
    scheduler: RequestScheduler | None = None,
) -> ScheduleReport:
    """Generate ``spec``'s request stream and serve it (convenience wrapper)."""
    from repro.sched.workload import generate_workload

    scheduler = scheduler or RequestScheduler()
    return scheduler.run(generate_workload(spec), spec)


__all__ = [
    "OUTCOME_STATUSES",
    "RequestOutcome",
    "RequestScheduler",
    "ScheduleReport",
    "SchedulerPolicy",
    "ServiceModel",
    "run_workload",
]
