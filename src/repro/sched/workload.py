"""Synthetic traffic generation: seeded open-loop request streams.

The render farm executes one pre-built job at a time; a serving system faces
*traffic* — many clients issuing trajectory requests with their own arrival
process, scene tastes and latency expectations.  This module generates that
traffic synthetically, as an **open-loop** stream (arrivals do not wait for
completions, the standard model for load experiments: offered load is a
property of the workload, not of the server under test).

Ingredients, all driven by one :class:`numpy.random.Generator` seeded from
``WorkloadSpec.seed`` so a workload is a pure function of its spec:

* **Arrival process** — ``"poisson"`` (exponential inter-arrival gaps at
  ``rate_rps``) or ``"bursty"``, a 2-state Markov-modulated Poisson process
  that alternates exponential dwell times in a *quiet* and a *burst* state;
  the burst state arrives ``burst_factor`` times faster and the quiet rate
  is chosen so the long-run mean stays ``rate_rps``.  Bursty traffic at the
  same mean rate is what separates an SLO controller from a throughput
  benchmark: transient queues form even when average utilisation is low.
* **Scene popularity** — Zipf over the scene catalogue (by catalogue order:
  entry ``i`` has weight ``(i + 1) ** -zipf_s``), matching the few-hot /
  long-tail skew of real content serving.  The default catalogue is the six
  benchmark scenes of the :func:`repro.store.store.default_store` zoo.
* **Per-client mixes** — each client gets a deterministic
  :class:`ClientProfile`: a favourite trajectory kind (rotating through
  :data:`repro.serve.trajectories.TRAJECTORY_KINDS` by client id) that
  dominates its trajectory mix, its own frame-count weighting over
  ``frame_choices``, and a priority class (the first ``premium_clients``
  clients are priority 0, the rest priority 1).

The output is a list of :class:`Request` objects — arrival time, client,
scene, trajectory kind + per-request jitter seed and anchor view, frame
count, relative SLO — which the scheduler consumes without ever touching
the RNG again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.synthetic import BENCHMARK_SCENES
from repro.serve.trajectories import TRAJECTORY_KINDS

#: Arrival processes :func:`generate_workload` understands.
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "bursty")

#: Weight a client's favourite trajectory kind gets in its mix (the
#: remaining mass is spread evenly over the other kinds).
FAVOURITE_WEIGHT = 0.55

#: Extra weight multiplier a client's favourite frame count gets.
FAVOURITE_FRAMES_BOOST = 3.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines a synthetic request stream.

    Attributes
    ----------
    arrival:
        ``"poisson"`` or ``"bursty"`` (2-state MMPP).
    rate_rps:
        Long-run mean offered load in requests per second (both arrival
        processes honour it).
    duration_s:
        Length of the arrival window; requests arrive in ``[0, duration_s)``.
    num_clients:
        Number of tenants issuing requests (uniformly at random per request).
    scenes:
        Scene catalogue, in popularity-rank order (Zipf rank 1 first).
    zipf_s:
        Zipf exponent of scene popularity (0 = uniform).
    frame_choices:
        Frame counts a request may ask for.
    slo_ms:
        Relative deadline attached to every request (its SLO).
    premium_clients:
        How many clients (ids ``0..premium_clients-1``) get priority 0;
        the rest are priority 1 (larger = less urgent, scheduled after).
    burst_factor:
        Burst-state rate multiplier of the bursty process (> 1).
    burst_fraction:
        Long-run fraction of time spent in the burst state.  Must satisfy
        ``burst_factor * burst_fraction < 1`` so the quiet rate stays
        positive.
    mean_dwell_s:
        Mean state dwell time of the bursty process (average of the two
        states' means, weighted by ``burst_fraction``).
    seed:
        Seed of the single RNG every random choice draws from.
    """

    arrival: str = "poisson"
    rate_rps: float = 4.0
    duration_s: float = 20.0
    num_clients: int = 4
    scenes: tuple[str, ...] = BENCHMARK_SCENES
    zipf_s: float = 1.1
    frame_choices: tuple[int, ...] = (2, 4, 8)
    slo_ms: float = 250.0
    premium_clients: int = 1
    burst_factor: float = 3.0
    burst_fraction: float = 0.25
    mean_dwell_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; available: {ARRIVAL_KINDS}"
            )
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not self.scenes:
            raise ValueError("scenes must not be empty")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if not self.frame_choices or any(n <= 0 for n in self.frame_choices):
            raise ValueError("frame_choices must be positive frame counts")
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if not 0 <= self.premium_clients <= self.num_clients:
            raise ValueError("premium_clients must lie in [0, num_clients]")
        if self.burst_factor <= 1:
            raise ValueError("burst_factor must exceed 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must lie strictly between 0 and 1")
        if self.burst_factor * self.burst_fraction >= 1:
            raise ValueError(
                "burst_factor * burst_fraction must stay below 1 so the "
                "quiet-state rate remains positive at the requested mean rate"
            )
        if self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")

    # ------------------------------------------------------------------
    @property
    def quiet_rate_rps(self) -> float:
        """Quiet-state rate keeping the bursty long-run mean at ``rate_rps``."""
        return (
            self.rate_rps
            * (1.0 - self.burst_factor * self.burst_fraction)
            / (1.0 - self.burst_fraction)
        )

    @property
    def burst_rate_rps(self) -> float:
        """Burst-state arrival rate of the bursty process."""
        return self.rate_rps * self.burst_factor

    def scene_probabilities(self) -> np.ndarray:
        """Zipf popularity over :attr:`scenes` (catalogue order = rank)."""
        weights = np.array(
            [(rank + 1.0) ** -self.zipf_s for rank in range(len(self.scenes))]
        )
        return weights / weights.sum()


@dataclass(frozen=True)
class ClientProfile:
    """One tenant's deterministic preferences (derived from its id)."""

    client_id: int
    priority: int
    #: Probability per trajectory kind, aligned with ``TRAJECTORY_KINDS``.
    trajectory_weights: tuple[float, ...]
    #: Probability per frame count, aligned with ``WorkloadSpec.frame_choices``.
    frame_weights: tuple[float, ...]


@dataclass(frozen=True)
class Request:
    """One client request: render a trajectory of a scene by a deadline."""

    request_id: int
    client_id: int
    #: Priority class (0 = premium, scheduled strictly before higher values).
    priority: int
    arrival_ms: float
    scene: str
    trajectory_kind: str
    num_frames: int
    #: Evaluation azimuth anchoring dolly/jitter paths (0..7).
    view_index: int
    #: Seed of the request's jitter perturbation stream (ignored by the
    #: other trajectory kinds, kept so replaying a request is exact).
    traj_seed: int
    #: Relative deadline: the request's SLO on end-to-end latency.
    slo_ms: float

    @property
    def deadline_ms(self) -> float:
        """Absolute deadline on the workload clock."""
        return self.arrival_ms + self.slo_ms


def client_profiles(spec: WorkloadSpec) -> list[ClientProfile]:
    """The deterministic per-client mixes of ``spec`` (no RNG involved).

    Client ``i`` favours trajectory kind ``TRAJECTORY_KINDS[i % 4]`` with
    :data:`FAVOURITE_WEIGHT` of the mass and frame count
    ``frame_choices[i % len]`` with a :data:`FAVOURITE_FRAMES_BOOST` weight
    multiplier, so a multi-client workload exercises every trajectory and
    job length without any client being a clone of another.
    """
    profiles = []
    num_kinds = len(TRAJECTORY_KINDS)
    for client_id in range(spec.num_clients):
        favourite = client_id % num_kinds
        other = (1.0 - FAVOURITE_WEIGHT) / (num_kinds - 1)
        trajectory_weights = tuple(
            FAVOURITE_WEIGHT if k == favourite else other for k in range(num_kinds)
        )
        frame_raw = [
            FAVOURITE_FRAMES_BOOST if i == client_id % len(spec.frame_choices) else 1.0
            for i in range(len(spec.frame_choices))
        ]
        total = sum(frame_raw)
        profiles.append(
            ClientProfile(
                client_id=client_id,
                priority=0 if client_id < spec.premium_clients else 1,
                trajectory_weights=trajectory_weights,
                frame_weights=tuple(w / total for w in frame_raw),
            )
        )
    return profiles


def _arrival_times_ms(spec: WorkloadSpec, rng: np.random.Generator) -> list[float]:
    """Arrival instants in ``[0, duration_s)`` under the spec's process."""
    times: list[float] = []
    horizon = spec.duration_s
    if spec.arrival == "poisson":
        t = rng.exponential(1.0 / spec.rate_rps)
        while t < horizon:
            times.append(t * 1000.0)
            t += rng.exponential(1.0 / spec.rate_rps)
        return times

    # Bursty: 2-state MMPP.  Dwell means are chosen so the stationary
    # fraction of time in the burst state is ``burst_fraction`` and the
    # average dwell is ``mean_dwell_s``; within a state arrivals are
    # Poisson at that state's rate (memorylessness makes resampling the
    # gap after a state switch exact, not an approximation).
    dwell_burst = spec.mean_dwell_s * 2.0 * spec.burst_fraction
    dwell_quiet = spec.mean_dwell_s * 2.0 * (1.0 - spec.burst_fraction)
    in_burst = False
    t = 0.0
    state_end = rng.exponential(dwell_quiet)
    while t < horizon:
        rate = spec.burst_rate_rps if in_burst else spec.quiet_rate_rps
        gap = rng.exponential(1.0 / rate)
        if t + gap >= state_end:
            t = state_end
            in_burst = not in_burst
            state_end = t + rng.exponential(dwell_burst if in_burst else dwell_quiet)
            continue
        t += gap
        if t < horizon:
            times.append(t * 1000.0)
    return times


def generate_workload(spec: WorkloadSpec) -> list[Request]:
    """Expand ``spec`` into its request stream (sorted by arrival time).

    Deterministic: every random draw comes from one
    ``np.random.default_rng(spec.seed)`` in a fixed order, so two calls with
    equal specs return equal streams — which is what makes scheduler runs
    and their decision logs replayable.
    """
    rng = np.random.default_rng(spec.seed)
    profiles = client_profiles(spec)
    scene_p = spec.scene_probabilities()
    requests: list[Request] = []
    for request_id, arrival_ms in enumerate(_arrival_times_ms(spec, rng)):
        client = profiles[int(rng.integers(spec.num_clients))]
        scene = spec.scenes[int(rng.choice(len(spec.scenes), p=scene_p))]
        kind = TRAJECTORY_KINDS[
            int(rng.choice(len(TRAJECTORY_KINDS), p=client.trajectory_weights))
        ]
        num_frames = spec.frame_choices[
            int(rng.choice(len(spec.frame_choices), p=client.frame_weights))
        ]
        requests.append(
            Request(
                request_id=request_id,
                client_id=client.client_id,
                priority=client.priority,
                arrival_ms=float(arrival_ms),
                scene=scene,
                trajectory_kind=kind,
                num_frames=int(num_frames),
                view_index=int(rng.integers(8)),
                traj_seed=int(rng.integers(2**31 - 1)),
                slo_ms=spec.slo_ms,
            )
        )
    return requests


def offered_load_rps(requests: list[Request], spec: WorkloadSpec) -> float:
    """Realised offered load of a generated stream (requests per second)."""
    return len(requests) / spec.duration_s


__all__ = [
    "ARRIVAL_KINDS",
    "ClientProfile",
    "Request",
    "WorkloadSpec",
    "client_profiles",
    "generate_workload",
    "offered_load_rps",
]
