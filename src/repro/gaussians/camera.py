"""Pinhole camera model and view transforms for 3DGS rendering.

The preprocessing stage of 3DGS (and Stage I/II of the GCC dataflow) needs,
per viewpoint:

* the world-to-camera (view) matrix ``W`` used to obtain view-space depth,
* the focal lengths used for the perspective Jacobian in EWA projection,
* the mapping from camera space to pixel coordinates.

We use the standard computer-vision convention: the camera looks down the
+Z axis in camera space, +X is right, +Y is down, and depth is the camera-
space ``z`` coordinate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Camera:
    """A pinhole camera.

    Parameters
    ----------
    width, height:
        Image resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels (defaults to the image centre).
    world_to_camera:
        ``(4, 4)`` rigid transform mapping world coordinates to camera
        coordinates.
    znear, zfar:
        Clipping planes used for frustum culling.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float = field(default=None)  # type: ignore[assignment]
    cy: float = field(default=None)  # type: ignore[assignment]
    world_to_camera: np.ndarray = field(default=None)  # type: ignore[assignment]
    znear: float = 0.2
    zfar: float = 1000.0

    def __post_init__(self) -> None:
        if self.cx is None:
            self.cx = self.width / 2.0
        if self.cy is None:
            self.cy = self.height / 2.0
        if self.world_to_camera is None:
            self.world_to_camera = np.eye(4)
        self.world_to_camera = np.asarray(self.world_to_camera, dtype=np.float64)
        if self.world_to_camera.shape != (4, 4):
            raise ValueError(
                f"world_to_camera must be 4x4, got {self.world_to_camera.shape}"
            )
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")
        if self.znear <= 0 or self.zfar <= self.znear:
            raise ValueError("require 0 < znear < zfar")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_pixels(self) -> int:
        """Total pixel count of the target image."""
        return self.width * self.height

    @property
    def rotation(self) -> np.ndarray:
        """The ``(3, 3)`` rotation part of the view matrix."""
        return self.world_to_camera[:3, :3]

    @property
    def translation(self) -> np.ndarray:
        """The ``(3,)`` translation part of the view matrix."""
        return self.world_to_camera[:3, 3]

    @property
    def position(self) -> np.ndarray:
        """Camera centre in world coordinates."""
        return -self.rotation.T @ self.translation

    @property
    def tan_half_fov_x(self) -> float:
        """Tangent of half the horizontal field of view."""
        return self.width / (2.0 * self.fx)

    @property
    def tan_half_fov_y(self) -> float:
        """Tangent of half the vertical field of view."""
        return self.height / (2.0 * self.fy)

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def world_to_camera_points(self, points: np.ndarray) -> np.ndarray:
        """Transform ``(N, 3)`` world points into camera space."""
        points = np.asarray(points, dtype=np.float64)
        return points @ self.rotation.T + self.translation

    def camera_to_pixel(self, cam_points: np.ndarray) -> np.ndarray:
        """Project camera-space points to pixel coordinates.

        Points behind the camera produce non-finite coordinates; callers are
        expected to have culled them beforehand (Stage I / frustum culling).
        """
        cam_points = np.asarray(cam_points, dtype=np.float64)
        z = cam_points[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.fx * cam_points[:, 0] / z + self.cx
            v = self.fy * cam_points[:, 1] / z + self.cy
        return np.stack([u, v], axis=1)

    def project_points(self, world_points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project world points; return ``(pixel_xy, depth)``."""
        cam = self.world_to_camera_points(world_points)
        return self.camera_to_pixel(cam), cam[:, 2]

    def view_directions(self, world_points: np.ndarray) -> np.ndarray:
        """Unit directions from the camera centre to each world point."""
        world_points = np.asarray(world_points, dtype=np.float64)
        deltas = world_points - self.position[None, :]
        norms = np.linalg.norm(deltas, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        return deltas / norms

    def scaled(self, factor: float) -> "Camera":
        """Return a camera rendering at ``factor`` times the resolution."""
        return Camera(
            width=max(1, int(round(self.width * factor))),
            height=max(1, int(round(self.height * factor))),
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
            world_to_camera=self.world_to_camera.copy(),
            znear=self.znear,
            zfar=self.zfar,
        )

    @classmethod
    def from_fov(
        cls,
        width: int,
        height: int,
        fov_y_degrees: float,
        world_to_camera: np.ndarray | None = None,
        znear: float = 0.2,
        zfar: float = 1000.0,
    ) -> "Camera":
        """Create a camera from a vertical field of view in degrees."""
        fov_y = math.radians(fov_y_degrees)
        fy = height / (2.0 * math.tan(fov_y / 2.0))
        fx = fy
        return cls(
            width=width,
            height=height,
            fx=fx,
            fy=fy,
            world_to_camera=world_to_camera,
            znear=znear,
            zfar=zfar,
        )


def look_at(
    eye: np.ndarray,
    target: np.ndarray,
    up: np.ndarray = (0.0, 1.0, 0.0),
) -> np.ndarray:
    """Build a world-to-camera matrix for a camera at ``eye`` looking at ``target``.

    Uses the +Z-forward, +Y-down convention expected by :class:`Camera`.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)

    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target coincide")
    forward = forward / norm

    right = np.cross(forward, up)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-12:
        # up parallel to forward: pick an arbitrary orthogonal direction.
        up = np.array([0.0, 0.0, 1.0]) if abs(forward[2]) < 0.9 else np.array([1.0, 0.0, 0.0])
        right = np.cross(forward, up)
        right_norm = np.linalg.norm(right)
    right = right / right_norm
    down = np.cross(forward, right)

    rotation = np.stack([right, down, forward], axis=0)
    translation = -rotation @ eye
    matrix = np.eye(4)
    matrix[:3, :3] = rotation
    matrix[:3, 3] = translation
    return matrix


def orbit_cameras(
    num_views: int,
    radius: float,
    height: float,
    target: np.ndarray = (0.0, 0.0, 0.0),
    image_size: tuple[int, int] = (800, 800),
    fov_y_degrees: float = 50.0,
    znear: float = 0.2,
    zfar: float = 1000.0,
) -> list[Camera]:
    """Generate cameras on a circular orbit around ``target``.

    This matches the way the synthetic benchmark scenes (e.g. Lego) are
    evaluated: a ring of test cameras looking inward at the object.
    """
    if num_views <= 0:
        raise ValueError("num_views must be positive")
    target = np.asarray(target, dtype=np.float64)
    cameras = []
    width, height_px = image_size
    for i in range(num_views):
        angle = 2.0 * math.pi * i / num_views
        eye = target + np.array(
            [radius * math.cos(angle), height, radius * math.sin(angle)]
        )
        w2c = look_at(eye, target)
        cameras.append(
            Camera.from_fov(
                width=width,
                height=height_px,
                fov_y_degrees=fov_y_degrees,
                world_to_camera=w2c,
                znear=znear,
                zfar=zfar,
            )
        )
    return cameras
