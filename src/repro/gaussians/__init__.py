"""3D Gaussian Splatting substrate: scene containers, cameras, and math.

This subpackage implements the data model the GCC paper's pipeline consumes:

* :class:`~repro.gaussians.model.GaussianScene` — the explicit scene
  representation used by 3DGS (means, scales, rotation quaternions,
  opacities, and spherical-harmonic colour coefficients).
* :class:`~repro.gaussians.camera.Camera` — pinhole camera with the
  world-to-camera (view) and perspective projection transforms used by the
  preprocessing stage.
* :mod:`~repro.gaussians.sh` — real spherical harmonics evaluation up to
  degree 3 (48 coefficients per Gaussian), Equation (2) of the paper.
* :mod:`~repro.gaussians.covariance` — covariance construction
  ``Sigma = R S S^T R^T`` and EWA projection to 2D, Equation (1).
* :mod:`~repro.gaussians.synthetic` — synthetic benchmark scenes standing in
  for the six pre-trained models the paper evaluates on.
"""

from repro.gaussians.camera import Camera, look_at, orbit_cameras
from repro.gaussians.covariance import (
    build_covariance_3d,
    project_covariance_2d,
    quaternion_to_rotation_matrix,
)
from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import SH_COEFFS_PER_CHANNEL, evaluate_sh_colors
from repro.gaussians.synthetic import SceneSpec, make_scene, scene_spec

__all__ = [
    "Camera",
    "GaussianScene",
    "SH_COEFFS_PER_CHANNEL",
    "SceneSpec",
    "build_covariance_3d",
    "evaluate_sh_colors",
    "look_at",
    "make_scene",
    "orbit_cameras",
    "project_covariance_2d",
    "quaternion_to_rotation_matrix",
    "scene_spec",
]
