"""Scene serialisation: compressed ``.npz`` archives and a simple text format.

The paper consumes trained models in the original 3DGS PLY layout.  We provide
a compact ``.npz`` container (the primary format for this reproduction) and a
human-readable text exchange format useful for inspecting tiny scenes and for
round-trip testing.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import SH_COEFFS_PER_CHANNEL

_FORMAT_VERSION = 1


def save_scene_npz(scene: GaussianScene, path: str | Path) -> None:
    """Save ``scene`` to a compressed ``.npz`` archive at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.array(_FORMAT_VERSION),
        name=np.array(scene.name),
        means=scene.means,
        scales=scene.scales,
        quaternions=scene.quaternions,
        opacities=scene.opacities,
        sh_coeffs=scene.sh_coeffs,
    )


def load_scene_npz(path: str | Path) -> GaussianScene:
    """Load a scene previously written by :func:`save_scene_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported scene file version {version}")
        return GaussianScene(
            means=data["means"],
            scales=data["scales"],
            quaternions=data["quaternions"],
            opacities=data["opacities"],
            sh_coeffs=data["sh_coeffs"],
            name=str(data["name"]),
        )


def scene_to_text(scene: GaussianScene) -> str:
    """Serialise a scene to a whitespace-separated text block.

    One line per Gaussian: mean (3), scale (3), quaternion (4), opacity (1),
    SH coefficients (48).  Intended for tiny scenes and debugging.
    """
    buffer = _io.StringIO()
    buffer.write(f"# repro-gaussian-scene v{_FORMAT_VERSION}\n")
    buffer.write(f"# name: {scene.name}\n")
    buffer.write(f"# count: {scene.num_gaussians}\n")
    flat_sh = scene.sh_coeffs.reshape(scene.num_gaussians, -1)
    for i in range(scene.num_gaussians):
        row = np.concatenate(
            [
                scene.means[i],
                scene.scales[i],
                scene.quaternions[i],
                [scene.opacities[i]],
                flat_sh[i],
            ]
        )
        buffer.write(" ".join(f"{value:.9g}" for value in row) + "\n")
    return buffer.getvalue()


def scene_from_text(text: str) -> GaussianScene:
    """Parse a scene from the text format written by :func:`scene_to_text`.

    A ``# repro-gaussian-scene vN`` header with a version other than the
    one this build writes raises ``ValueError`` (headerless data is
    accepted for hand-written fixtures).
    """
    name = "scene"
    rows: list[np.ndarray] = []
    expected_width = 3 + 3 + 4 + 1 + 3 * SH_COEFFS_PER_CHANNEL
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if stripped.startswith("# repro-gaussian-scene v"):
                version_text = stripped.rsplit("v", 1)[1].strip()
                if version_text != str(_FORMAT_VERSION):
                    raise ValueError(
                        f"unsupported scene text version {version_text}; "
                        f"this build reads version {_FORMAT_VERSION}"
                    )
            if stripped.startswith("# name:"):
                name = stripped.split(":", 1)[1].strip()
            continue
        values = np.fromstring(stripped, sep=" ")
        if values.size != expected_width:
            raise ValueError(
                f"expected {expected_width} values per line, got {values.size}"
            )
        rows.append(values)

    if not rows:
        return GaussianScene.empty(name=name)
    data = np.stack(rows, axis=0)
    count = data.shape[0]
    return GaussianScene(
        means=data[:, 0:3],
        scales=data[:, 3:6],
        quaternions=data[:, 6:10],
        opacities=data[:, 10],
        sh_coeffs=data[:, 11:].reshape(count, 3, SH_COEFFS_PER_CHANNEL),
        name=name,
    )


def save_scene_text(scene: GaussianScene, path: str | Path) -> None:
    """Write the text serialisation of ``scene`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(scene_to_text(scene))


def load_scene_text(path: str | Path) -> GaussianScene:
    """Read a scene from the text format at ``path``."""
    return scene_from_text(Path(path).read_text())
