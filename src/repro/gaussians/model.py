"""Scene container for 3D Gaussian Splatting models.

A trained 3DGS model is a set of anisotropic Gaussians, each described by 59
floating-point parameters (Section 2.1 of the GCC paper):

* 3  — mean position ``mu``
* 3  — log-free scale factors ``s`` (axis lengths of the ellipsoid)
* 4  — rotation quaternion ``q`` (w, x, y, z)
* 1  — opacity ``omega`` in (0, 1]
* 48 — spherical harmonic colour coefficients (16 per RGB channel, degree 3)

:class:`GaussianScene` stores those parameters as NumPy arrays in
structure-of-arrays form, which is both what the functional renderers consume
and what the hardware simulators use to compute DRAM traffic (59 floats = 236
bytes per Gaussian at FP32).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.sh import SH_COEFFS_PER_CHANNEL

#: Number of float32 parameters per Gaussian (the paper's "59 floating-point
#: parameters": 3 mean + 3 scale + 4 quaternion + 1 opacity + 48 SH).
FLOATS_PER_GAUSSIAN = 3 + 3 + 4 + 1 + 3 * SH_COEFFS_PER_CHANNEL

#: Bytes per Gaussian at FP32 precision.
BYTES_PER_GAUSSIAN = FLOATS_PER_GAUSSIAN * 4

#: Bytes of the geometry-only subset (mean, scale, quaternion, opacity) that
#: GCC's Stage II loads before deciding whether the SH coefficients are needed.
BYTES_GEOMETRY = (3 + 3 + 4 + 1) * 4

#: Bytes of the SH colour coefficients alone.
BYTES_SH = 3 * SH_COEFFS_PER_CHANNEL * 4

#: Bytes of the mean position alone (what Stage I depth grouping needs).
BYTES_MEAN = 3 * 4


class SceneValidationError(ValueError):
    """Raised when scene arrays are inconsistent or out of range."""


@dataclass
class GaussianScene:
    """Structure-of-arrays container for a 3DGS model.

    Parameters
    ----------
    means:
        ``(N, 3)`` float array of Gaussian centres in world space.
    scales:
        ``(N, 3)`` positive float array of per-axis standard deviations.
    quaternions:
        ``(N, 4)`` float array of unit rotation quaternions ``(w, x, y, z)``.
    opacities:
        ``(N,)`` float array of opacities in ``(0, 1]``.
    sh_coeffs:
        ``(N, 3, 16)`` float array of spherical-harmonic coefficients, one row
        of 16 degree-3 coefficients per colour channel.
    name:
        Optional human-readable scene name (e.g. ``"lego"``).
    """

    means: np.ndarray
    scales: np.ndarray
    quaternions: np.ndarray
    opacities: np.ndarray
    sh_coeffs: np.ndarray
    name: str = field(default="scene")

    def __post_init__(self) -> None:
        self.means = np.asarray(self.means, dtype=np.float64)
        self.scales = np.asarray(self.scales, dtype=np.float64)
        self.quaternions = np.asarray(self.quaternions, dtype=np.float64)
        self.opacities = np.asarray(self.opacities, dtype=np.float64)
        self.sh_coeffs = np.asarray(self.sh_coeffs, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    # Validation and basic properties
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check shapes and ranges, raising :class:`SceneValidationError`."""
        n = self.num_gaussians
        if self.means.shape != (n, 3):
            raise SceneValidationError(f"means must be (N, 3), got {self.means.shape}")
        if self.scales.shape != (n, 3):
            raise SceneValidationError(f"scales must be (N, 3), got {self.scales.shape}")
        if self.quaternions.shape != (n, 4):
            raise SceneValidationError(
                f"quaternions must be (N, 4), got {self.quaternions.shape}"
            )
        if self.opacities.shape != (n,):
            raise SceneValidationError(
                f"opacities must be (N,), got {self.opacities.shape}"
            )
        if self.sh_coeffs.shape != (n, 3, SH_COEFFS_PER_CHANNEL):
            raise SceneValidationError(
                "sh_coeffs must be (N, 3, %d), got %s"
                % (SH_COEFFS_PER_CHANNEL, self.sh_coeffs.shape)
            )
        if n and np.any(self.scales <= 0):
            raise SceneValidationError("scales must be strictly positive")
        if n and (np.any(self.opacities <= 0) or np.any(self.opacities > 1)):
            raise SceneValidationError("opacities must lie in (0, 1]")
        if n:
            norms = np.linalg.norm(self.quaternions, axis=1)
            if np.any(norms < 1e-8):
                raise SceneValidationError("quaternions must be non-zero")

    @property
    def num_gaussians(self) -> int:
        """Number of Gaussians in the scene."""
        return int(self.means.shape[0])

    def __len__(self) -> int:
        return self.num_gaussians

    @property
    def total_bytes(self) -> int:
        """Total model footprint in bytes at FP32 (59 floats per Gaussian)."""
        return self.num_gaussians * BYTES_PER_GAUSSIAN

    # ------------------------------------------------------------------
    # Subsetting / transformation helpers
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "GaussianScene":
        """Return a new scene containing only the Gaussians at ``indices``.

        ``indices`` may be an integer index array or a boolean mask.
        """
        indices = np.asarray(indices)
        return GaussianScene(
            means=self.means[indices],
            scales=self.scales[indices],
            quaternions=self.quaternions[indices],
            opacities=self.opacities[indices],
            sh_coeffs=self.sh_coeffs[indices],
            name=self.name,
        )

    def concatenated_with(self, other: "GaussianScene") -> "GaussianScene":
        """Return a new scene that is the union of ``self`` and ``other``."""
        return GaussianScene(
            means=np.concatenate([self.means, other.means], axis=0),
            scales=np.concatenate([self.scales, other.scales], axis=0),
            quaternions=np.concatenate([self.quaternions, other.quaternions], axis=0),
            opacities=np.concatenate([self.opacities, other.opacities], axis=0),
            sh_coeffs=np.concatenate([self.sh_coeffs, other.sh_coeffs], axis=0),
            name=self.name,
        )

    def normalized_quaternions(self) -> np.ndarray:
        """Return quaternions normalised to unit length, shape ``(N, 4)``."""
        norms = np.linalg.norm(self.quaternions, axis=1, keepdims=True)
        return self.quaternions / norms

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the world-space AABB ``(lo, hi)`` of the Gaussian centres."""
        if self.num_gaussians == 0:
            zero = np.zeros(3)
            return zero, zero
        return self.means.min(axis=0), self.means.max(axis=0)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, name: str = "empty") -> "GaussianScene":
        """Return a scene containing zero Gaussians."""
        return cls(
            means=np.zeros((0, 3)),
            scales=np.zeros((0, 3)),
            quaternions=np.zeros((0, 4)),
            opacities=np.zeros((0,)),
            sh_coeffs=np.zeros((0, 3, SH_COEFFS_PER_CHANNEL)),
            name=name,
        )

    @classmethod
    def from_flat_colors(
        cls,
        means: np.ndarray,
        scales: np.ndarray,
        quaternions: np.ndarray,
        opacities: np.ndarray,
        rgb: np.ndarray,
        name: str = "scene",
    ) -> "GaussianScene":
        """Build a scene whose colour is view-independent.

        Only the DC (degree-0) SH coefficient is populated, which is the
        standard way to encode a constant RGB colour in a 3DGS model.
        """
        from repro.gaussians.sh import SH_C0

        rgb = np.asarray(rgb, dtype=np.float64)
        n = rgb.shape[0]
        sh = np.zeros((n, 3, SH_COEFFS_PER_CHANNEL))
        # colour = SH_C0 * c0 + 0.5  =>  c0 = (colour - 0.5) / SH_C0
        sh[:, :, 0] = (rgb - 0.5) / SH_C0
        return cls(
            means=means,
            scales=scales,
            quaternions=quaternions,
            opacities=opacities,
            sh_coeffs=sh,
            name=name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GaussianScene(name={self.name!r}, num_gaussians={self.num_gaussians}, "
            f"bytes={self.total_bytes})"
        )
