"""Covariance construction and EWA projection (Equation 1 of the paper).

Each Gaussian's shape is parameterised by a scale vector ``s`` and a rotation
quaternion ``q``.  The 3D covariance is

    Sigma = R S S^T R^T

and its screen-space (2D) projection under a camera with view rotation ``W``
and perspective Jacobian ``J`` is

    Sigma' = J W Sigma W^T J^T

These are the "numerous small matrix multiplications" the Projection Unit of
the GCC architecture (Section 4.3) performs with its shared matrix-vector
multipliers.  All functions here are vectorised over the Gaussian axis.
"""

from __future__ import annotations

import numpy as np


def quaternion_to_rotation_matrix(quaternions: np.ndarray) -> np.ndarray:
    """Convert ``(N, 4)`` quaternions (w, x, y, z) to ``(N, 3, 3)`` rotations.

    Quaternions are normalised internally, matching the reference 3DGS
    rasteriser (which stores unnormalised activations).
    """
    q = np.asarray(quaternions, dtype=np.float64)
    if q.ndim == 1:
        q = q[None, :]
    norms = np.linalg.norm(q, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    q = q / norms
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]

    rot = np.empty((q.shape[0], 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    rot[:, 0, 1] = 2.0 * (x * y - w * z)
    rot[:, 0, 2] = 2.0 * (x * z + w * y)
    rot[:, 1, 0] = 2.0 * (x * y + w * z)
    rot[:, 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    rot[:, 1, 2] = 2.0 * (y * z - w * x)
    rot[:, 2, 0] = 2.0 * (x * z - w * y)
    rot[:, 2, 1] = 2.0 * (y * z + w * x)
    rot[:, 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return rot


def build_covariance_3d(scales: np.ndarray, quaternions: np.ndarray) -> np.ndarray:
    """Reconstruct ``(N, 3, 3)`` world-space covariance matrices.

    Implements ``Sigma = R S S^T R^T`` where ``S = diag(s)``.
    """
    scales = np.asarray(scales, dtype=np.float64)
    if scales.ndim == 1:
        scales = scales[None, :]
    rotations = quaternion_to_rotation_matrix(quaternions)
    # M = R @ diag(s): scale the columns of R.
    m = rotations * scales[:, None, :]
    return m @ np.transpose(m, (0, 2, 1))


def perspective_jacobian(
    cam_points: np.ndarray,
    fx: float,
    fy: float,
    tan_half_fov_x: float | None = None,
    tan_half_fov_y: float | None = None,
) -> np.ndarray:
    """Jacobian ``J`` of the perspective projection at each camera-space point.

    Returns ``(N, 2, 3)`` matrices.  Following the reference implementation,
    the camera-space ``x/z`` and ``y/z`` ratios are clamped to 1.3x the
    half-FOV tangents before differentiation to keep the linearisation stable
    for Gaussians near the frustum boundary.
    """
    cam_points = np.asarray(cam_points, dtype=np.float64)
    if cam_points.ndim == 1:
        cam_points = cam_points[None, :]
    x, y, z = cam_points[:, 0].copy(), cam_points[:, 1].copy(), cam_points[:, 2]
    z = np.where(np.abs(z) < 1e-8, 1e-8, z)

    if tan_half_fov_x is not None:
        limit_x = 1.3 * tan_half_fov_x
        x = np.clip(x / z, -limit_x, limit_x) * z
    if tan_half_fov_y is not None:
        limit_y = 1.3 * tan_half_fov_y
        y = np.clip(y / z, -limit_y, limit_y) * z

    n = cam_points.shape[0]
    jac = np.zeros((n, 2, 3), dtype=np.float64)
    jac[:, 0, 0] = fx / z
    jac[:, 0, 2] = -fx * x / (z * z)
    jac[:, 1, 1] = fy / z
    jac[:, 1, 2] = -fy * y / (z * z)
    return jac


def project_covariance_2d(
    cov3d: np.ndarray,
    cam_points: np.ndarray,
    view_rotation: np.ndarray,
    fx: float,
    fy: float,
    tan_half_fov_x: float | None = None,
    tan_half_fov_y: float | None = None,
    dilation: float = 0.3,
) -> np.ndarray:
    """Project 3D covariances to 2D screen space (``Sigma' = J W Sigma W^T J^T``).

    Parameters
    ----------
    cov3d:
        ``(N, 3, 3)`` world-space covariances.
    cam_points:
        ``(N, 3)`` camera-space Gaussian centres (for the Jacobian).
    view_rotation:
        ``(3, 3)`` rotation part of the world-to-camera matrix.
    dilation:
        The low-pass dilation added to the diagonal (0.3 px^2 in the reference
        rasteriser) to guarantee each splat covers at least one pixel.

    Returns
    -------
    ``(N, 2, 2)`` screen-space covariance matrices.
    """
    cov3d = np.asarray(cov3d, dtype=np.float64)
    view_rotation = np.asarray(view_rotation, dtype=np.float64)
    jac = perspective_jacobian(cam_points, fx, fy, tan_half_fov_x, tan_half_fov_y)

    # T = J @ W, shape (N, 2, 3)
    t = jac @ view_rotation[None, :, :]
    cov2d = t @ cov3d @ np.transpose(t, (0, 2, 1))
    cov2d[:, 0, 0] += dilation
    cov2d[:, 1, 1] += dilation
    return cov2d


def covariance_2d_eigenvalues(cov2d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues ``(lambda1 >= lambda2)`` of ``(N, 2, 2)`` covariances.

    Uses the closed-form solution for symmetric 2x2 matrices, which is what
    the SCU hardware computes.
    """
    cov2d = np.asarray(cov2d, dtype=np.float64)
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    d = cov2d[:, 1, 1]
    mid = 0.5 * (a + d)
    det = a * d - b * b
    disc = np.sqrt(np.maximum(mid * mid - det, 0.0))
    lam1 = mid + disc
    lam2 = np.maximum(mid - disc, 0.0)
    return lam1, lam2


def invert_covariance_2d(cov2d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert ``(N, 2, 2)`` covariances, returning ``(conic, valid_mask)``.

    The "conic" is the packed inverse ``(A, B, C)`` with
    ``d^T Sigma'^{-1} d = A dx^2 + 2 B dx dy + C dy^2``.  Degenerate
    covariances (non-positive determinant) are flagged invalid.
    """
    cov2d = np.asarray(cov2d, dtype=np.float64)
    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    d = cov2d[:, 1, 1]
    det = a * d - b * b
    valid = det > 1e-12
    safe_det = np.where(valid, det, 1.0)
    conic = np.stack([d / safe_det, -b / safe_det, a / safe_det], axis=1)
    conic[~valid] = 0.0
    return conic, valid


def mahalanobis_sq(conic: np.ndarray, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Squared Mahalanobis distance ``d^T Sigma'^{-1} d`` from packed conics.

    ``conic`` has shape ``(..., 3)`` and ``dx``/``dy`` broadcast against its
    leading dimensions.  Floating conics keep their dtype (the float32
    engine mode evaluates in single precision); anything else is promoted
    to float64 as before.
    """
    conic = np.asarray(conic)
    if not np.issubdtype(conic.dtype, np.floating):
        conic = conic.astype(np.float64)
    a = conic[..., 0]
    b = conic[..., 1]
    c = conic[..., 2]
    return a * dx * dx + 2.0 * b * dx * dy + c * dy * dy
