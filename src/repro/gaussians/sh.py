"""Real spherical harmonics evaluation (degree 0-3).

3DGS stores view-dependent colour as 16 real spherical harmonic (SH)
coefficients per colour channel (48 per Gaussian).  Given the normalised view
direction ``v = (x, y, z)`` from camera to Gaussian, the colour of one channel
is Equation (2) of the paper:

    C = sum_l sum_m  c_{l,m} * Y_{l,m}(x, y, z)

plus the conventional ``+0.5`` offset and clamping used by the reference 3DGS
implementation.  The constants below are the standard real-SH constants used
by the original 3DGS CUDA rasteriser and by ``gsplat``.
"""

from __future__ import annotations

import numpy as np

#: Number of SH coefficients per colour channel at degree 3.
SH_COEFFS_PER_CHANNEL = 16

# Degree-0 constant.
SH_C0 = 0.28209479177387814
# Degree-1 constants.
SH_C1 = 0.4886025119029199
# Degree-2 constants.
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
# Degree-3 constants.
SH_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)


def sh_basis(directions: np.ndarray, degree: int = 3) -> np.ndarray:
    """Evaluate the real SH basis functions for unit ``directions``.

    Parameters
    ----------
    directions:
        ``(N, 3)`` array of *normalised* view directions.
    degree:
        Maximum SH degree in ``[0, 3]``.

    Returns
    -------
    ``(N, (degree + 1)**2)`` array of basis values, ordered exactly as the
    3DGS reference implementation orders its coefficients.
    """
    if degree < 0 or degree > 3:
        raise ValueError(f"degree must be in [0, 3], got {degree}")
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim == 1:
        directions = directions[None, :]
    n = directions.shape[0]
    x, y, z = directions[:, 0], directions[:, 1], directions[:, 2]

    num_coeffs = (degree + 1) ** 2
    basis = np.zeros((n, num_coeffs), dtype=np.float64)
    basis[:, 0] = SH_C0
    if degree >= 1:
        basis[:, 1] = -SH_C1 * y
        basis[:, 2] = SH_C1 * z
        basis[:, 3] = -SH_C1 * x
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 4] = SH_C2[0] * xy
        basis[:, 5] = SH_C2[1] * yz
        basis[:, 6] = SH_C2[2] * (2.0 * zz - xx - yy)
        basis[:, 7] = SH_C2[3] * xz
        basis[:, 8] = SH_C2[4] * (xx - yy)
    if degree >= 3:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 9] = SH_C3[0] * y * (3.0 * xx - yy)
        basis[:, 10] = SH_C3[1] * xy * z
        basis[:, 11] = SH_C3[2] * y * (4.0 * zz - xx - yy)
        basis[:, 12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
        basis[:, 13] = SH_C3[4] * x * (4.0 * zz - xx - yy)
        basis[:, 14] = SH_C3[5] * z * (xx - yy)
        basis[:, 15] = SH_C3[6] * x * (xx - 3.0 * yy)
    return basis


def evaluate_sh_colors(
    sh_coeffs: np.ndarray,
    directions: np.ndarray,
    degree: int = 3,
    clamp: bool = True,
) -> np.ndarray:
    """Evaluate per-Gaussian RGB colours from SH coefficients.

    Parameters
    ----------
    sh_coeffs:
        ``(N, 3, 16)`` coefficient array (16 coefficients per channel).
    directions:
        ``(N, 3)`` view directions (camera position to Gaussian mean).  They
        are normalised internally.
    degree:
        SH degree to evaluate; coefficients beyond the requested degree are
        ignored, matching 3DGS's progressive-degree training schedule.
    clamp:
        When true (the default, matching the reference rasteriser), colours
        are offset by ``+0.5`` and clamped to be non-negative.

    Returns
    -------
    ``(N, 3)`` array of RGB colours.
    """
    sh_coeffs = np.asarray(sh_coeffs, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim == 1:
        directions = directions[None, :]
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    unit = directions / norms

    basis = sh_basis(unit, degree=degree)  # (N, K)
    k = basis.shape[1]
    colors = np.einsum("nck,nk->nc", sh_coeffs[:, :, :k], basis)
    if clamp:
        colors = np.maximum(colors + 0.5, 0.0)
    return colors


def count_sh_flops(num_gaussians: int, degree: int = 3) -> int:
    """Approximate multiply-add count for SH colour evaluation.

    Used by the hardware models to account compute energy: each coefficient
    contributes one multiply-accumulate per channel, plus the basis
    polynomial evaluation (counted once per Gaussian, ~30 ops at degree 3).
    """
    num_coeffs = (degree + 1) ** 2
    basis_ops = {0: 1, 1: 6, 2: 18, 3: 34}[degree]
    return num_gaussians * (3 * num_coeffs + basis_ops)
