"""Synthetic benchmark scenes standing in for the paper's trained 3DGS models.

The GCC paper evaluates on six scenes: two synthetic object captures (Lego,
Palace), two outdoor Tanks-and-Temples scenes (Train, Truck) and two indoor
Deep Blending scenes (Playroom, Drjohnson).  The pre-trained Gaussian models
are not redistributable and are millions of primitives each, so this module
generates seeded synthetic scenes whose *statistics* mimic each benchmark:

* scene extent and camera placement (object orbit vs. inside-looking-out),
* number of Gaussians (scaled down by ``scale``; ratios in the paper's
  experiments are scale-invariant),
* opacity distribution (synthetic scenes are dominated by near-opaque
  primitives, real captures have a long tail of translucent ones),
* primitive size distribution (dense small splats in the foreground, large
  fuzzy splats for backgrounds),
* clustering (compact object vs. sparse room-scale distribution).

Those are precisely the properties that drive the quantities the paper
measures: the fraction of preprocessed Gaussians that are actually rendered
(Fig. 2a), per-Gaussian reload counts under tile-wise rendering (Fig. 2b),
bounding-box overdraw (Table 1), and DRAM traffic (Figs. 11-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.model import GaussianScene
from repro.gaussians.sh import SH_C0, SH_COEFFS_PER_CHANNEL


@dataclass(frozen=True)
class SceneSpec:
    """Parameters describing one synthetic benchmark scene.

    The defaults of each named preset (see :data:`SCENE_SPECS`) were chosen so
    that the reproduced motivation statistics land near the paper's Figure 2
    values at the default ``scale``.
    """

    name: str
    #: Number of Gaussians at scale=1.0.
    base_num_gaussians: int
    #: Approximate world-space radius of the scene content.
    extent: float
    #: Number of dense foreground clusters.
    num_clusters: int
    #: Standard deviation of each cluster, as a fraction of ``extent``.
    cluster_sigma: float
    #: Fraction of Gaussians placed in a diffuse background shell.
    background_fraction: float
    #: Beta-distribution parameters for opacity (alpha, beta).
    opacity_beta: tuple[float, float]
    #: Log-normal parameters (mean, sigma) for primitive scale, in world units.
    scale_lognormal: tuple[float, float]
    #: Camera orbit radius as a multiple of ``extent`` ("object" scenes) or
    #: the fraction of the extent the camera sits from the centre ("room"
    #: scenes).
    camera_radius_factor: float
    #: Camera height as a fraction of extent.
    camera_height_factor: float
    #: Whether the camera is inside the scene looking outward (indoor
    #: captures) rather than orbiting an object.
    indoor: bool
    #: Default rendered image resolution (width, height).
    image_size: tuple[int, int]
    #: Vertical field of view in degrees.
    fov_y_degrees: float = 50.0
    #: Random seed for reproducibility.
    seed: int = 0
    #: Amplitude of view-dependent (degree>=1) SH colour components.
    sh_detail: float = 0.15


#: The six benchmark scenes from the paper, plus a tiny smoke-test scene.
SCENE_SPECS: dict[str, SceneSpec] = {
    "palace": SceneSpec(
        name="palace",
        base_num_gaussians=120_000,
        extent=2.2,
        num_clusters=10,
        cluster_sigma=0.11,
        background_fraction=0.05,
        opacity_beta=(4.0, 0.7),
        scale_lognormal=(-4.1, 0.6),
        camera_radius_factor=2.4,
        camera_height_factor=0.7,
        indoor=False,
        image_size=(800, 800),
        seed=11,
    ),
    "lego": SceneSpec(
        name="lego",
        base_num_gaussians=100_000,
        extent=2.0,
        num_clusters=8,
        cluster_sigma=0.12,
        background_fraction=0.04,
        opacity_beta=(4.0, 0.7),
        scale_lognormal=(-4.0, 0.6),
        camera_radius_factor=2.5,
        camera_height_factor=0.8,
        indoor=False,
        image_size=(800, 800),
        seed=12,
    ),
    "train": SceneSpec(
        name="train",
        base_num_gaussians=1_000_000,
        extent=12.0,
        num_clusters=16,
        cluster_sigma=0.14,
        background_fraction=0.30,
        opacity_beta=(2.5, 0.8),
        scale_lognormal=(-4.0, 0.7),
        camera_radius_factor=0.9,
        camera_height_factor=0.15,
        indoor=False,
        image_size=(980, 545),
        seed=13,
    ),
    "truck": SceneSpec(
        name="truck",
        base_num_gaussians=2_500_000,
        extent=14.0,
        num_clusters=18,
        cluster_sigma=0.13,
        background_fraction=0.32,
        opacity_beta=(2.5, 0.8),
        scale_lognormal=(-4.0, 0.7),
        camera_radius_factor=0.9,
        camera_height_factor=0.12,
        indoor=False,
        image_size=(979, 546),
        seed=14,
    ),
    "playroom": SceneSpec(
        name="playroom",
        base_num_gaussians=2_300_000,
        extent=8.0,
        num_clusters=24,
        cluster_sigma=0.10,
        background_fraction=0.40,
        opacity_beta=(2.0, 0.9),
        scale_lognormal=(-3.6, 0.8),
        camera_radius_factor=0.85,
        camera_height_factor=0.05,
        indoor=True,
        image_size=(1264, 832),
        fov_y_degrees=70.0,
        seed=15,
    ),
    "drjohnson": SceneSpec(
        name="drjohnson",
        base_num_gaussians=3_300_000,
        extent=10.0,
        num_clusters=28,
        cluster_sigma=0.09,
        background_fraction=0.45,
        opacity_beta=(2.0, 0.9),
        scale_lognormal=(-3.5, 0.8),
        camera_radius_factor=0.85,
        camera_height_factor=0.05,
        indoor=True,
        image_size=(1332, 876),
        fov_y_degrees=70.0,
        seed=16,
    ),
    "smoke": SceneSpec(
        name="smoke",
        base_num_gaussians=400,
        extent=1.5,
        num_clusters=3,
        cluster_sigma=0.25,
        background_fraction=0.1,
        opacity_beta=(2.0, 1.0),
        scale_lognormal=(-3.0, 0.4),
        camera_radius_factor=2.5,
        camera_height_factor=0.6,
        indoor=False,
        image_size=(128, 128),
        seed=7,
    ),
}

#: The scenes the paper's main evaluation (Figure 10, Table 2) covers.
BENCHMARK_SCENES: tuple[str, ...] = (
    "palace",
    "lego",
    "train",
    "truck",
    "playroom",
    "drjohnson",
)


#: Names of the specs shipped with the package (runtime registrations via
#: :func:`register_scene_spec` may add more but can never replace these).
_BUILTIN_SPEC_NAMES = frozenset(SCENE_SPECS)


def scene_spec(name: str) -> SceneSpec:
    """Return the :class:`SceneSpec` preset for ``name`` (case-insensitive)."""
    key = name.lower()
    if key not in SCENE_SPECS:
        raise KeyError(
            f"unknown scene {name!r}; available: {sorted(SCENE_SPECS)}"
        )
    return SCENE_SPECS[key]


def register_scene_spec(spec: SceneSpec, overwrite: bool = False) -> None:
    """Register a runtime :class:`SceneSpec` (e.g. for a file-backed scene).

    Camera placement and trajectory expansion look scenes up by name through
    :func:`scene_spec`, so a scene that arrives from disk needs a spec
    before it can be served along a trajectory (see
    :func:`repro.store.store.derive_scene_spec`).  Built-in specs cannot be
    replaced; re-registering a runtime name requires ``overwrite=True``.
    """
    key = spec.name.lower()
    if key in _BUILTIN_SPEC_NAMES:
        raise ValueError(f"cannot replace built-in scene spec {spec.name!r}")
    if key in SCENE_SPECS and not overwrite:
        raise ValueError(f"scene spec {spec.name!r} is already registered")
    SCENE_SPECS[key] = spec


def _sample_positions(spec: SceneSpec, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample Gaussian centres: dense clusters plus a diffuse background."""
    num_background = int(round(count * spec.background_fraction))
    num_foreground = count - num_background

    cluster_centres = rng.uniform(-0.6, 0.6, size=(spec.num_clusters, 3)) * spec.extent
    if spec.indoor:
        # Indoor scenes spread content over walls/floor: flatten the vertical
        # axis of cluster centres and push them outward.
        cluster_centres[:, 1] *= 0.35
        cluster_centres[:, [0, 2]] *= 1.2

    assignments = rng.integers(0, spec.num_clusters, size=num_foreground)
    offsets = rng.normal(0.0, spec.cluster_sigma * spec.extent, size=(num_foreground, 3))
    foreground = cluster_centres[assignments] + offsets

    # Background: a spherical shell (outdoor) or the walls of a box (indoor).
    if spec.indoor:
        background = rng.uniform(-1.0, 1.0, size=(num_background, 3)) * spec.extent
        # Project onto the nearest face of the bounding box to mimic walls.
        axis = rng.integers(0, 3, size=num_background)
        sign = rng.choice([-1.0, 1.0], size=num_background)
        background[np.arange(num_background), axis] = sign * spec.extent
    else:
        directions = rng.normal(size=(num_background, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = spec.extent * rng.uniform(1.2, 2.0, size=(num_background, 1))
        background = directions * radii

    return np.concatenate([foreground, background], axis=0)


def _sample_sh(spec: SceneSpec, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample SH coefficients: a dominant DC colour plus small detail terms."""
    base_rgb = rng.uniform(0.05, 0.95, size=(count, 3))
    sh = np.zeros((count, 3, SH_COEFFS_PER_CHANNEL))
    sh[:, :, 0] = (base_rgb - 0.5) / SH_C0
    detail = rng.normal(0.0, spec.sh_detail, size=(count, 3, SH_COEFFS_PER_CHANNEL - 1))
    # Higher-degree bands decay, as in trained models.
    band_decay = np.concatenate(
        [np.full(3, 1.0), np.full(5, 0.5), np.full(7, 0.25)]
    )
    sh[:, :, 1:] = detail * band_decay[None, None, :]
    return sh


def make_scene(name: str, scale: float = 0.05, seed: int | None = None) -> GaussianScene:
    """Generate the synthetic stand-in for benchmark scene ``name``.

    Parameters
    ----------
    name:
        One of :data:`SCENE_SPECS` (``"lego"``, ``"train"``, ...).
    scale:
        Fraction of the paper-scale Gaussian count to generate.  The default
        of 0.05 keeps full-suite runs laptop-sized; the dataflow ratios the
        experiments report are stable across ``scale``.
    seed:
        Optional override of the preset's seed.

    Returns
    -------
    A validated :class:`GaussianScene`.
    """
    spec = scene_spec(name)
    if scale <= 0:
        raise ValueError("scale must be positive")
    count = max(16, int(round(spec.base_num_gaussians * scale)))
    rng = np.random.default_rng(spec.seed if seed is None else seed)

    means = _sample_positions(spec, count, rng)
    scales = np.exp(
        rng.normal(spec.scale_lognormal[0], spec.scale_lognormal[1], size=(count, 3))
    ) * spec.extent
    # Background primitives are larger and fuzzier.
    num_background = int(round(count * spec.background_fraction))
    if num_background:
        scales[-num_background:] *= 3.0

    quaternions = rng.normal(size=(count, 4))
    quaternions /= np.linalg.norm(quaternions, axis=1, keepdims=True)

    opacities = rng.beta(spec.opacity_beta[0], spec.opacity_beta[1], size=count)
    opacities = np.clip(opacities, 1.0 / 255.0 + 1e-4, 1.0)

    sh = _sample_sh(spec, count, rng)

    return GaussianScene(
        means=means,
        scales=scales,
        quaternions=quaternions,
        opacities=opacities,
        sh_coeffs=sh,
        name=spec.name,
    )


def scaled_image_size(spec: SceneSpec, image_scale: float) -> tuple[int, int]:
    """The preset image resolution scaled by ``image_scale``.

    The single source of the rounding/minimum rule (``max(8, round(...))``),
    shared by :func:`make_camera` and every serving-trajectory camera so all
    paths render a preset at exactly the same resolution.
    """
    width, height = spec.image_size
    return (
        max(8, int(round(width * image_scale))),
        max(8, int(round(height * image_scale))),
    )


def make_camera(
    name: str,
    view_index: int = 0,
    num_views: int = 8,
    image_scale: float = 1.0,
) -> Camera:
    """Build the ``view_index``-th evaluation camera for scene ``name``.

    Object scenes get an inward-looking orbit camera; indoor scenes get a
    camera placed inside the room looking at a wall-ward target, mimicking the
    Deep Blending capture trajectories.
    """
    spec = scene_spec(name)
    if num_views <= 0:
        raise ValueError("num_views must be positive")
    angle = 2.0 * np.pi * (view_index % num_views) / num_views
    width, height = scaled_image_size(spec, image_scale)

    if spec.indoor:
        eye = np.array(
            [
                spec.extent * spec.camera_radius_factor * np.cos(angle),
                spec.extent * spec.camera_height_factor,
                spec.extent * spec.camera_radius_factor * np.sin(angle),
            ]
        )
        # Indoor captures look across the room toward the opposite side, so
        # most of the scene content falls inside the frustum.
        target = np.array([0.0, 0.0, 0.0])
    else:
        radius = spec.extent * spec.camera_radius_factor
        eye = np.array(
            [
                radius * np.cos(angle),
                spec.extent * spec.camera_height_factor,
                radius * np.sin(angle),
            ]
        )
        target = np.zeros(3)

    world_to_camera = look_at(eye, target)
    return Camera.from_fov(
        width=width,
        height=height,
        fov_y_degrees=spec.fov_y_degrees,
        world_to_camera=world_to_camera,
    )


def make_single_gaussian_scene(
    opacity: float,
    scale: float = 0.3,
    position: tuple[float, float, float] = (0.0, 0.0, 0.0),
    rotation_angle: float = 0.6,
    aspect: float = 3.0,
    rgb: tuple[float, float, float] = (0.8, 0.2, 0.2),
) -> GaussianScene:
    """Build a one-Gaussian scene (used by the Figure 4 region experiment).

    The Gaussian is anisotropic (elongated by ``aspect``) and rotated in the
    image plane so that AABB, OBB and the alpha-exact footprint all differ.
    """
    if not 0.0 < opacity <= 1.0:
        raise ValueError("opacity must be in (0, 1]")
    half = rotation_angle / 2.0
    quaternion = np.array([[np.cos(half), 0.0, 0.0, np.sin(half)]])
    return GaussianScene.from_flat_colors(
        means=np.array([position], dtype=np.float64),
        scales=np.array([[scale * aspect, scale, scale]], dtype=np.float64),
        quaternions=quaternion,
        opacities=np.array([opacity]),
        rgb=np.array([rgb]),
        name="single",
    )
