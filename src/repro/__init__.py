"""Reproduction of *GCC: A 3DGS Inference Architecture with Gaussian-Wise and
Cross-Stage Conditional Processing* (MICRO 2025).

The package is organised in four layers:

* :mod:`repro.gaussians` — the 3D Gaussian Splatting substrate (scenes,
  cameras, spherical harmonics, covariance projection, synthetic benchmark
  scenes).
* :mod:`repro.render` / :mod:`repro.dataflow` — functionally-correct
  renderers for the standard (tile-wise) dataflow and the paper's
  Gaussian-wise, cross-stage-conditional dataflow, plus the alpha-based
  boundary identification algorithm.
* :mod:`repro.arch` — cycle-level models of the GCC accelerator, the GSCore
  baseline, and GPU platforms, with DRAM/SRAM/energy accounting.
* :mod:`repro.eval` — the experiment harness reproducing every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.gaussians import make_scene
    from repro.gaussians.synthetic import make_camera
    from repro.render import render_gaussianwise
    from repro.arch import GccAccelerator

    scene = make_scene("lego", scale=0.02)
    camera = make_camera("lego", image_scale=0.2)
    frame = render_gaussianwise(scene, camera)
    report = GccAccelerator().simulate(scene, camera, render_result=frame)
    print(report.fps, report.energy_mj_per_frame)
"""

from repro.arch import GccAccelerator, GccConfig, GScoreAccelerator, GScoreConfig
from repro.gaussians import Camera, GaussianScene, make_scene
from repro.render import RenderConfig, render_gaussianwise, render_tilewise

__version__ = "1.0.0"

__all__ = [
    "Camera",
    "GaussianScene",
    "GccAccelerator",
    "GccConfig",
    "GScoreAccelerator",
    "GScoreConfig",
    "RenderConfig",
    "__version__",
    "make_scene",
    "render_gaussianwise",
    "render_tilewise",
]
