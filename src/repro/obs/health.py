"""Live health plane: worker heartbeats and a report-only watchdog.

The executor's workers already talk to the parent on every task reply,
so liveness needs no new protocol: the dispatcher stamps a heartbeat
(last-reply time, reply count) on each slot as replies drain, and —
when an obs context is attached — mirrors it into per-worker gauges.
The :class:`Watchdog` then classifies each worker from those stamps and
the slot's in-flight state:

* ``live`` — idle, or busy for less than ``slow_after_s``;
* ``slow`` — busy longer than ``slow_after_s`` but not yet stalled;
* ``stalled`` — busy longer than ``stalled_after_s`` with no reply.

The watchdog only ever *reports*.  It never kills, restarts or reroutes
— intervention would make output depend on wall-clock timing and break
the bitwise-identity contract the executor pins (a stalled worker's
frame, once it finally lands, must be the same bytes it always was).
Routing around sick hosts is the fleet layer's job (ROADMAP item 3);
this module is the sensor it will read.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HEARTBEAT_GAUGE",
    "LIVE",
    "REPLIES_COUNTER",
    "SLOW",
    "STALLED",
    "STATES",
    "Watchdog",
    "summarize_states",
]

LIVE = "live"
SLOW = "slow"
STALLED = "stalled"
STATES = (LIVE, SLOW, STALLED)

#: Wall time of each worker's most recent reply, labelled by worker id.
HEARTBEAT_GAUGE = "repro_worker_heartbeat_ms"
#: Total replies (ok or err) per worker — the heartbeat's rate signal.
REPLIES_COUNTER = "repro_worker_replies_total"


@dataclass(frozen=True)
class Watchdog:
    """Classifies a worker from how long its current task has been out.

    Thresholds are generous by default: the classifier keys on the
    in-flight time of a *single* task, and a healthy worker's longest
    unit of work (a cold decode plus a full-preset frame) is well under
    a second on any machine the benchmarks target.
    """

    slow_after_s: float = 2.0
    stalled_after_s: float = 10.0
    #: A worker in the *slow* band burning at least this CPU% (of one
    #: core) is still making progress — a big frame on a loaded machine,
    #: not a sick process — and stays ``live``.  The fold never rescues
    #: the *stalled* band: a worker past ``stalled_after_s`` at high CPU
    #: is a spin loop, which is exactly what stalled should flag.
    progress_cpu_percent: float = 50.0

    def __post_init__(self):
        if not 0 < self.slow_after_s <= self.stalled_after_s:
            raise ValueError("need 0 < slow_after_s <= stalled_after_s")
        if not self.progress_cpu_percent > 0:
            raise ValueError("need progress_cpu_percent > 0")

    def classify(self, busy_s: float | None, cpu_percent: float | None = None) -> str:
        """State for a worker whose task has been in flight ``busy_s``
        seconds (``None`` = idle).

        ``cpu_percent`` (when the resource plane has a sample) refines
        only the slow band: busy-but-progressing demotes to ``live``.
        ``None`` — no ``/proc``, or a first sample with no baseline —
        leaves the time-only classification untouched.
        """
        if busy_s is None or busy_s < self.slow_after_s:
            return LIVE
        if busy_s < self.stalled_after_s:
            if cpu_percent is not None and cpu_percent >= self.progress_cpu_percent:
                return LIVE
            return SLOW
        return STALLED


def summarize_states(workers: list[dict]) -> dict:
    """Count workers per state (always includes every state key)."""
    counts = {state: 0 for state in STATES}
    for worker in workers:
        counts[worker["state"]] += 1
    return counts
