"""``repro-obs`` — analyze traces and metrics, evaluate SLO alert rules.

The read side of the observability plane as a CLI.  Feed it the
artifacts the other CLIs write (``--trace-out``/``--metrics-out``) and
it answers the diagnosis questions: where the latency went (critical
path, stage/lane breakdowns, occupancy/queue timelines), what regressed
between two runs (``--diff-trace``, or ``--baseline BENCH_<name>.json``
against a committed snapshot's embedded analysis), and whether the run
violated declarative SLO rules (``--alerts rules.json``).

Examples::

    repro-sched --rate 6 --duration 2 --execute --quick \\
        --trace-out trace.json --metrics-out metrics.prom
    repro-obs --trace trace.json --metrics metrics.prom \\
        --alerts rules.json --analyze-out analysis.json --html-out trace.html

Exit codes: 0 = OK (analysis ran, no alert firing), 3 = at least one
alert rule firing at the end of the evaluated timeline, 2 = usage error.
The non-zero alert exit is the CI contract: a smoke job can run a
tight burn-rate rule against a fresh trace and fail the build on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.alerts import AlertEngine, firing_rules, load_rules, samples_from_schedule_log
from repro.obs.analysis import analyze, diff_analyses, events_from_trace, load_trace
from repro.obs.exporters import export_html, parse_prometheus_snapshot
from repro.obs.resources import diff_resources, resources_from_snapshot

#: Exit code when at least one alert rule is firing — distinct from
#: argparse's 2 so scripts can tell "SLO violated" from "bad usage".
EXIT_ALERTS_FIRING = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyze repro traces/metrics and evaluate SLO alert rules.",
    )
    parser.add_argument("--trace", help="trace file (Chrome JSON or spans .jsonl)")
    parser.add_argument("--metrics", help="Prometheus text metrics file")
    parser.add_argument(
        "--diff-trace", help="baseline trace file to diff the fresh analysis against"
    )
    parser.add_argument(
        "--diff-metrics",
        help="baseline Prometheus metrics file to diff per-worker resources "
        "(CPU%%, RSS, ctx switches) against",
    )
    parser.add_argument(
        "--baseline",
        help="committed BENCH_<name>.json with an embedded 'analysis' to diff "
        "against — a file path, or a bare guard name like 'obs_overhead'",
    )
    parser.add_argument("--alerts", help="JSON file with a list of alert rules")
    parser.add_argument(
        "--analyze-out", help="write the full analysis report (JSON) here"
    )
    parser.add_argument(
        "--html-out", help="write a self-contained HTML timeline report here"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON instead of text"
    )
    return parser


def _resolve_baseline(spec: str) -> str:
    """A ``--baseline`` value as a path: verbatim if it exists, else the
    committed ``BENCH_<name>.json`` looked up in cwd and the repo root."""
    if Path(spec).exists():
        return spec
    name = f"BENCH_{spec}.json"
    for directory in (Path.cwd(), Path(__file__).resolve().parents[3]):
        candidate = directory / name
        if candidate.exists():
            return str(candidate)
    return spec  # let open() raise with the original spelling


def _alert_samples(records: list[dict], metrics_snapshot: list | None) -> list[tuple]:
    """The timeline the alert engine evaluates.

    A sched trace carries the decision log as virtual instants, so it
    replays into a full cumulative metric timeline (multi-window burn
    rates get history); the metrics snapshot, when given, is appended as
    the final cumulative sample — it is the run's end state, and it
    brings the data-plane series (render/decode histograms, cache
    counters) that the decision log alone cannot reconstruct.
    """
    samples: list[tuple] = []
    events = events_from_trace(records) if records else []
    if events:
        samples = samples_from_schedule_log(events)
    if metrics_snapshot is not None:
        t_last = samples[-1][0] if samples else 0.0
        samples.append((t_last, metrics_snapshot))
    return samples


def _format_text(report: dict) -> str:
    lines = []
    analysis = report.get("analysis")
    if analysis:
        cp = analysis["critical_path"]
        lines.append(
            f"critical path  root={cp['root_name']} total={cp['total_ms']:.3f} ms "
            f"({len(cp['steps'])} steps, leaf={cp.get('leaf')})"
        )
        for step in cp["steps"]:
            lines.append(
                f"  {step['name']:<12} {step['dur_ms']:>10.3f} ms  "
                f"self {step['self_ms']:>10.3f} ms  [{step['lane']}]"
                + (f"  ERROR: {step['error']}" if step.get("error") else "")
            )
        attribution = analysis["stages"]["frame_attribution"]
        lines.append(
            f"frame time     {attribution['frame_ms']:.3f} ms, "
            f"{100.0 * attribution['attributed_fraction']:.1f}% in kernel stages "
            + " ".join(
                f"{k}={v:.3f}" for k, v in attribution["per_stage"].items()
            )
        )
        lanes = analysis["lanes"]
        lines.append(f"lanes          window {lanes['window_ms']:.3f} ms")
        for lane, info in lanes["lanes"].items():
            lines.append(
                f"  {lane:<12} busy {info['busy_ms']:>10.3f} ms  "
                f"util {100.0 * info['utilization']:>5.1f}%  ({info['spans']} spans)"
            )
        occupancy = analysis["worker_occupancy"]
        queue = analysis["queue_depth"]
        lines.append(
            f"occupancy      max {occupancy['max']} mean {occupancy['mean']:.3f}; "
            f"queue depth max {queue['max']} mean {queue['mean']:.3f}"
        )
        if analysis["lanes_closed"]:
            lines.append(f"lanes closed   {', '.join(analysis['lanes_closed'])}")
    diff = report.get("diff")
    if diff:
        cp = diff["critical_path_ms"]
        lines.append(
            f"diff           critical path {cp['base']:.3f} -> {cp['current']:.3f} ms "
            f"({cp['delta']:+.3f} ms)"
        )
        for name in diff["regressions"]:
            d = diff["stages"][name]
            lines.append(
                f"  regressed    {name:<12} {d['base_ms']:.3f} -> "
                f"{d['current_ms']:.3f} ms ({d['delta_ms']:+.3f} ms)"
            )
        if not diff["regressions"]:
            lines.append("  no stage regressed")
        if diff["attribution"]:
            lines.append(f"  attribution  {diff['attribution']}")
    resources = report.get("resources")
    if resources:
        lines.append("worker resources")
        for worker, info in resources["workers"].items():
            cpu = "?" if info["cpu_percent"] is None else f"{info['cpu_percent']:.1f}%"
            rss = (
                "?"
                if info["rss_bytes"] is None
                else f"{info['rss_bytes'] / (1 << 20):.1f} MiB"
            )
            ctx = info.get("ctx_switches", {})
            lines.append(
                f"  worker {worker:<4} cpu {cpu:>7}  rss {rss:>10}  "
                f"ctx v={ctx.get('voluntary', 0):.0f} i={ctx.get('involuntary', 0):.0f}"
            )
    resources_diff = report.get("resources_diff")
    if resources_diff:
        lines.append("worker resources diff")
        for worker, entry in resources_diff["workers"].items():
            if entry.get("base") is None or entry.get("current") is None:
                side = "base" if entry.get("base") is not None else "current"
                lines.append(f"  worker {worker:<4} only in {side} run")
                continue
            rss_delta = entry.get("rss_delta_bytes")
            cpu_delta = entry.get("cpu_delta_percent")
            lines.append(
                f"  worker {worker:<4} "
                + (
                    f"rss {rss_delta / (1 << 20):+.1f} MiB"
                    if rss_delta is not None
                    else "rss n/a"
                )
                + (
                    f"  cpu {cpu_delta:+.1f}%"
                    if cpu_delta is not None
                    else "  cpu n/a"
                )
            )
    alerts = report.get("alerts")
    if alerts is not None:
        if alerts["firing"]:
            lines.append(f"alerts FIRING  {', '.join(alerts['firing'])}")
        else:
            lines.append("alerts         none firing")
        for entry in alerts["log"]:
            lines.append(f"  {entry['t_ms']:>10.1f} ms  {entry['event']:<15} {entry['rule']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.trace and not args.metrics:
        build_parser().error("need --trace and/or --metrics")

    report: dict = {}
    records: list[dict] = []
    if args.trace:
        records = load_trace(args.trace)
        report["analysis"] = analyze(records)

    metrics_snapshot = None
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            metrics_snapshot = parse_prometheus_snapshot(fh.read())
        resources = resources_from_snapshot(metrics_snapshot)
        if resources:
            report["resources"] = resources

    if args.diff_metrics:
        if not args.metrics:
            build_parser().error("--diff-metrics requires --metrics")
        with open(args.diff_metrics, "r", encoding="utf-8") as fh:
            base_resources = resources_from_snapshot(
                parse_prometheus_snapshot(fh.read())
            )
        report["resources_diff"] = diff_resources(
            base_resources, report.get("resources", {})
        )

    if args.diff_trace or args.baseline:
        if not args.trace:
            build_parser().error("--diff-trace/--baseline require --trace")
        if args.diff_trace:
            base_analysis = analyze(load_trace(args.diff_trace))
        else:
            with open(_resolve_baseline(args.baseline), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            base_analysis = doc.get("analysis")
            if base_analysis is None:
                build_parser().error(
                    f"{args.baseline} has no embedded 'analysis' "
                    "(re-snapshot with perf_trajectory.py)"
                )
        report["diff"] = diff_analyses(base_analysis, report["analysis"])

    exit_code = 0
    if args.alerts:
        with open(args.alerts, "r", encoding="utf-8") as fh:
            rules = load_rules(json.load(fh))
        samples = _alert_samples(records, metrics_snapshot)
        log = AlertEngine(rules).evaluate(samples)
        firing = firing_rules(log)
        report["alerts"] = {"rules": len(rules), "log": log, "firing": firing}
        if firing:
            exit_code = EXIT_ALERTS_FIRING

    if args.analyze_out:
        with open(args.analyze_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.html_out:
        if not records:
            build_parser().error("--html-out requires --trace")
        export_html(args.html_out, records, title=f"repro trace · {args.trace}")

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_format_text(report))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
