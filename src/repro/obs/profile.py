"""No-deps sampling profiler: flamegraph-grade CPU and memory attribution.

Two attribution planes, both hung off :class:`~repro.obs.trace.Tracer`'s
``observer`` extension point, both stdlib-only:

* **CPU** — :class:`StackSampler` runs a daemon thread that snapshots
  every other thread's Python stack via ``sys._current_frames()`` at a
  fixed interval and folds each snapshot into a collapsed-stack counter
  (``frame;frame;...;span:<stage> count`` — the Brendan Gregg folded
  format every flamegraph renderer eats).  A :class:`SpanStackTracker`
  rides the span entry/exit stream so each sampled stack is tagged with
  the innermost *tracked* span open on that thread at sample time —
  that tag is what lets :func:`attribute_stages` say "93% of samples
  landed inside ``blend``" without symbol-name guessing.

  A sampling thread (not a signal) is deliberate: ``signal``-based
  profilers only interrupt the main thread, but render work here runs
  on executor pool threads and under pytest workers.  The cost model is
  the usual statistical one — at the default 5 ms interval a stage
  needs ~10 ms of cumulative CPU to be visible at all, and fractions
  converge as run time grows.

* **Memory** — :class:`MemoryAttributor` brackets each tracked span
  with ``tracemalloc`` readings: allocation increase across the span
  and the traced-memory peak reached inside it, keyed by span name.
  ``tracemalloc`` roughly doubles allocation cost while tracing, so
  memory attribution is opt-in and independent of the (cheap) CPU
  sampler; the zero-perturbation suite runs with both enabled to prove
  neither changes a rendered bit.

Workers are separate *processes*, invisible to this process's
``sys._current_frames()`` — CPU/memory attribution therefore profiles
sequential execution (``--workers 0``) or the parent's own threads.
The per-worker resource plane (:mod:`repro.obs.resources`) covers the
multiprocess case at process granularity.
"""

from __future__ import annotations

import sys
import threading
import time

__all__ = [
    "KERNEL_STAGES",
    "TRACKED_SPANS",
    "WAIT_LEAVES",
    "CompositeObserver",
    "MemoryAttributor",
    "SpanStackTracker",
    "StackSampler",
    "attribute_stages",
    "collapse_text",
]

#: The render-kernel stage spans CPU attribution is judged against.
KERNEL_STAGES = ("project", "pair_build", "blend")
#: Spans bracketed for attribution: kernel stages plus codec decode.
TRACKED_SPANS = KERNEL_STAGES + ("decode",)

#: Leaf ``file:func`` frames that mean "this thread is parked, not
#: working": lock/condition waits, thread joins, selector polls, pipe
#: polls, the HTTP accept loop.  Stacks ending here are classified idle
#: and excluded from the attribution denominator (the py-spy convention)
#: — a profiler that charges the render kernels for the listener thread
#: blocked in ``select`` would understate every stage on quiet runs.
WAIT_LEAVES = frozenset(
    {
        "threading.py:wait",
        "threading.py:join",
        "threading.py:_wait_for_tstate_lock",
        "selectors.py:select",
        "socketserver.py:serve_forever",
        "socketserver.py:_handle_request_noblock",
        "connection.py:poll",
        "connection.py:_poll",
        "connection.py:wait",
        "connection.py:recv",
        "connection.py:_recv",
        "connection.py:recv_bytes",
        "connection.py:_recv_bytes",
        "socket.py:accept",
        "socket.py:recv",
        "socket.py:recv_into",
        "socket.py:readinto",
        "socket.py:sendall",
        "profile.py:capture",
    }
)


class SpanStackTracker:
    """Per-thread stack of currently-open *tracked* span names.

    Installed as a tracer observer.  ``span_enter``/``span_exit`` run on
    the span's own thread; :meth:`innermost` is called from the sampler
    thread.  The per-thread stacks live in a dict keyed by thread ident
    — single reads and appends are atomic under the GIL, and the sampler
    tolerates the one benign race (a span closing mid-sample shifts one
    sample between adjacent stages, which is noise by construction).
    """

    def __init__(self, tracked: tuple[str, ...] = TRACKED_SPANS):
        self.tracked = frozenset(tracked)
        self._stacks: dict[int, list[str]] = {}

    # -- tracer-observer protocol ------------------------------------------

    def span_enter(self, name: str):
        if name not in self.tracked:
            return None
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        stack.append(name)
        return name

    def span_exit(self, name: str, token) -> None:
        if token is None:
            return
        stack = self._stacks.get(threading.get_ident())
        if stack and stack[-1] == token:
            stack.pop()

    # -- sampler side ------------------------------------------------------

    def innermost(self, thread_ident: int) -> str | None:
        """The deepest tracked span open on ``thread_ident``, if any."""
        stack = self._stacks.get(thread_ident)
        return stack[-1] if stack else None


class CompositeObserver:
    """Fans the tracer's single observer slot out to several observers."""

    def __init__(self, *observers):
        self.observers = tuple(observers)

    def span_enter(self, name: str):
        return tuple(obs.span_enter(name) for obs in self.observers)

    def span_exit(self, name: str, token) -> None:
        tokens = token if token is not None else (None,) * len(self.observers)
        for obs, tok in zip(self.observers, tokens):
            obs.span_exit(name, tok)


def _fold_frame(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # Trim to the tail path component; full build paths bloat folded
    # output without adding identity (func names disambiguate in practice).
    slash = filename.rfind("/")
    return f"{filename[slash + 1:]}:{code.co_name}"


class StackSampler:
    """Daemon-thread sampling profiler producing collapsed-stack counts.

    ``counts()`` maps a root-first tuple of ``file:func`` frames —
    suffixed with ``span:<name>`` when a tracked span was open on the
    sampled thread — to the number of samples observed there.
    :meth:`capture` takes a bounded-duration delta (the ``/profile``
    endpoint); :meth:`start`/:meth:`stop` run it continuously.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        tracker: SpanStackTracker | None = None,
    ):
        if not interval_s > 0:
            raise ValueError("need interval_s > 0")
        self.interval_s = float(interval_s)
        self.tracker = tracker
        #: Thread idents never sampled — pure-infrastructure threads (the
        #: telemetry listener, a handler blocked inside ``capture``) that
        #: would otherwise pollute every profile with their wait frames.
        self.ignored: set[int] = set()
        self._counts: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once(skip={own})

    def sample_once(self, skip: set[int] | None = None) -> int:
        """Fold one snapshot of every (other) thread's stack; returns the
        number of threads sampled."""
        skip = (skip or set()) | self.ignored
        sampled = 0
        for ident, frame in sys._current_frames().items():
            if ident in skip:
                continue
            frames = []
            while frame is not None:
                frames.append(_fold_frame(frame))
                frame = frame.f_back
            frames.reverse()  # root-first, the folded-stack convention
            if self.tracker is not None:
                span = self.tracker.innermost(ident)
                if span is not None:
                    frames.append(f"span:{span}")
            key = tuple(frames)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
            sampled += 1
        return sampled

    # -- reading -----------------------------------------------------------

    def counts(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def capture(self, seconds: float) -> dict[tuple[str, ...], int]:
        """Sample for ``seconds`` and return only the stacks added.

        Works whether or not the sampler is already running: a running
        sampler contributes its stream (the delta is computed against a
        baseline snapshot); otherwise this call samples inline.
        """
        baseline = self.counts()
        if self.running:
            deadline = time.monotonic() + float(seconds)
            while time.monotonic() < deadline:
                time.sleep(min(self.interval_s, 0.05))
        else:
            own = {threading.get_ident()}
            deadline = time.monotonic() + float(seconds)
            while time.monotonic() < deadline:
                self.sample_once(skip=own)
                time.sleep(self.interval_s)
        delta: dict[tuple[str, ...], int] = {}
        for key, count in self.counts().items():
            extra = count - baseline.get(key, 0)
            if extra > 0:
                delta[key] = extra
        return delta


def collapse_text(counts: dict[tuple[str, ...], int]) -> str:
    """Folded flamegraph text: one ``frame;frame;... count`` line per
    stack, sorted for deterministic output.  Feed straight into
    ``flamegraph.pl`` or any folded-stack renderer."""
    lines = [
        ";".join(frames) + f" {count}"
        for frames, count in sorted(counts.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def attribute_stages(
    counts: dict[tuple[str, ...], int],
    stages: tuple[str, ...] = KERNEL_STAGES,
) -> dict:
    """How much of the sampled CPU landed inside each named kernel stage.

    Returns ``{"total", "idle", "active", "stages": {stage: samples},
    "attributed_fraction"}``.  Stage membership comes from the
    ``span:<name>`` tag the sampler appends, not from frame-name
    matching, so a stage is charged for everything executed under its
    span including numpy internals that never show a Python frame of
    their own.  Stacks parked on a :data:`WAIT_LEAVES` frame count as
    ``idle`` and are excluded from the denominator: the fraction is
    ``sum(stages) / active`` — CPU attribution over threads doing work,
    which is what the ≥ 50%-inside-named-stages acceptance gate checks.
    """
    markers = {f"span:{stage}": stage for stage in stages}
    total = idle = 0
    per_stage = {stage: 0 for stage in stages}
    for frames, count in counts.items():
        total += count
        if not frames:
            continue
        leaf = frames[-1]
        if leaf in markers:
            per_stage[markers[leaf]] += count
        elif leaf in WAIT_LEAVES:
            idle += count
    attributed = sum(per_stage.values())
    active = total - idle
    return {
        "total": total,
        "idle": idle,
        "active": active,
        "stages": per_stage,
        "attributed_fraction": (attributed / active) if active else 0.0,
    }


class MemoryAttributor:
    """Per-span allocation accounting over ``tracemalloc``.

    A tracer observer: each tracked span's entry records the current
    traced size and resets the peak; its exit charges the span with the
    net allocation increase and the peak traced size reached inside it.
    ``stats()`` returns ``{span_name: {"count", "peak_bytes",
    "total_increase_bytes"}}``.  Tracked spans never nest within each
    other in this codebase (project/pair_build/blend are siblings under
    a frame; decode is a sibling of frame), so the reset-peak bracket is
    exact per span.

    Does nothing (and charges nothing) unless :meth:`start` has engaged
    ``tracemalloc`` — so the attributor can sit installed permanently
    while tracing stays opt-in.
    """

    def __init__(self, tracked: tuple[str, ...] = TRACKED_SPANS):
        self.tracked = frozenset(tracked)
        self._lock = threading.Lock()
        self._stats: dict[str, dict] = {}
        self._started_here = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True

    def stop(self) -> None:
        import tracemalloc

        if self._started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_here = False

    # -- tracer-observer protocol ------------------------------------------

    def span_enter(self, name: str):
        if name not in self.tracked:
            return None
        import tracemalloc

        if not tracemalloc.is_tracing():
            return None
        current, _ = tracemalloc.get_traced_memory()
        if hasattr(tracemalloc, "reset_peak"):
            tracemalloc.reset_peak()
        return current

    def span_exit(self, name: str, token) -> None:
        if token is None:
            return
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        with self._lock:
            entry = self._stats.setdefault(
                name, {"count": 0, "peak_bytes": 0, "total_increase_bytes": 0}
            )
            entry["count"] += 1
            entry["peak_bytes"] = max(entry["peak_bytes"], peak)
            entry["total_increase_bytes"] += max(0, current - token)

    # -- reading -----------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        with self._lock:
            return {name: dict(entry) for name, entry in sorted(self._stats.items())}

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
