"""Trace analytics: critical paths, breakdowns, timelines, run diffs.

PR 7 made every layer *emit* spans and metrics; this module is the read
side.  Everything here is a pure function of the input span records —
no clocks, no randomness, stable sort orders, all reported numbers
rounded to a fixed precision — so analyzing the same trace twice yields
byte-identical JSON, and committed analyses are replayable artifacts
exactly like decision logs.

The analyses:

* :func:`critical_path` — the longest *blocking* chain through the span
  tree (request → job → frame → shard → kernel stage): starting from the
  longest ``request`` root, each step descends into the child whose end
  time gates the parent's completion, attributing every step's duration
  exactly to self time (the node minus its children) and child time.
* :func:`stage_breakdown` — per-span-name latency aggregates plus the
  *frame attribution*: what fraction of total frame time the named
  kernel stages (project/pair_build/blend) account for — the paper's
  per-stage cost story, read off a real trace.
* :func:`lane_breakdown` — busy time and utilization per lane (worker
  slots, main, clients), from the union of that lane's span intervals.
* :func:`occupancy_timeline` / :func:`queue_depth_timeline` — step
  functions derived purely from span boundaries: how many workers were
  busy, and how deep the scheduler's queue ran (from virtual
  ``queue_wait`` spans).
* :func:`diff_analyses` — the regression attributor: given two analyses
  (two runs, or a fresh run vs a committed ``BENCH_<name>.json``
  baseline's embedded analysis), ranks the per-stage and per-lane deltas
  so "which stage regressed" has a first-class answer.

Input records are the tracer's plain span dicts; :func:`load_trace`
also accepts the exported artifacts (Chrome ``trace_event`` JSON or the
``.jsonl`` span dump) and :func:`records_from_chrome_trace` reverses the
export — span ids and parent links ride in the event ``args``, so the
tree survives the round trip.

Partial traces are first-class inputs: a killed worker leaves an
error-annotated ``request`` span with no children and a ``lane_closed``
instant, and every analysis here treats childless or error spans as
ordinary leaves instead of raising.
"""

from __future__ import annotations

import json

from repro.obs.trace import VIRTUAL, WALL

__all__ = [
    "KERNEL_STAGES",
    "analyze",
    "critical_path",
    "diff_analyses",
    "events_from_trace",
    "lane_breakdown",
    "load_trace",
    "occupancy_timeline",
    "queue_depth_timeline",
    "records_from_chrome_trace",
    "stage_breakdown",
]

#: The render kernel's named stages — the paper's per-stage cost model.
KERNEL_STAGES = ("project", "pair_build", "blend")

#: Fixed rounding of every reported number: coarse enough to serialize
#: identically, fine enough (nanoseconds) to lose nothing measurable.
_NDIGITS = 6


def _r(value: float) -> float:
    return round(float(value), _NDIGITS)


# ----------------------------------------------------------------------
# Loading traces back from exported artifacts
# ----------------------------------------------------------------------
def records_from_chrome_trace(payload: dict) -> list[dict]:
    """Reconstruct span records from an exported Chrome-trace payload.

    The exporter stamps ``span_id``/``parent`` into every event's
    ``args`` and lane names into thread metadata, so the span tree is
    recoverable exactly; wall timestamps come back rebased to the trace
    start (the exporter subtracted the earliest ``t0_ms``), which is
    irrelevant to every analysis here — only relative times matter.
    """
    events = payload.get("traceEvents") or []
    lanes: dict[tuple, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[(event["pid"], event["tid"])] = event["args"]["name"]
    records: list[dict] = []
    open_async: dict[tuple, dict] = {}

    def base_record(event, dur_ms):
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", None)
        parent = args.pop("parent", None)
        return {
            "id": span_id if span_id is not None else f"evt:{len(records) + 1}",
            "parent": parent,
            "name": event["name"],
            "lane": lanes.get((event.get("pid"), event.get("tid")), "main"),
            "clock": WALL if event.get("pid") == 1 else VIRTUAL,
            "t0_ms": event["ts"] / 1e3,
            "dur_ms": dur_ms,
            "attrs": args,
        }

    for event in events:
        ph = event.get("ph")
        if ph == "X":
            records.append(base_record(event, event["dur"] / 1e3))
        elif ph == "i":
            records.append(base_record(event, None))
        elif ph == "b":
            open_async[(event.get("cat"), event.get("id"))] = event
    for event in events:
        if event.get("ph") != "e":
            continue
        begin = open_async.pop((event.get("cat"), event.get("id")), None)
        if begin is not None:
            records.append(base_record(begin, (event["ts"] - begin["ts"]) / 1e3))
    return records


def load_trace(path: str) -> list[dict]:
    """Load span records from any trace artifact the repo writes.

    ``.jsonl`` is the raw span dump (one record per line); anything else
    is parsed as JSON — a Chrome ``trace_event`` payload (reversed via
    :func:`records_from_chrome_trace`) or a bare list of span records.
    """
    with open(path, "r", encoding="utf-8") as fh:
        if str(path).endswith(".jsonl"):
            return [json.loads(line) for line in fh if line.strip()]
        payload = json.load(fh)
    if isinstance(payload, dict) and "traceEvents" in payload:
        return records_from_chrome_trace(payload)
    if isinstance(payload, list):
        return payload
    raise ValueError(f"unrecognised trace payload in {path!r}")


def events_from_trace(records: list[dict]) -> list[dict]:
    """Recover decision-log entries from a trace's virtual instants.

    The scheduler tees every decision event into the trace as a
    virtual-clock instant on the ``scheduler`` lane (name = event kind,
    attrs = the entry's fields), so a sched trace carries its decision
    log and the alert engine can replay it without the separate events
    file.  Returns entries in virtual-time order.
    """
    events = [
        {"t_ms": r["t0_ms"], "event": r["name"], **(r.get("attrs") or {})}
        for r in records
        if r.get("clock") == VIRTUAL
        and r.get("dur_ms") is None
        and r.get("lane") == "scheduler"
    ]
    events.sort(key=lambda e: e["t_ms"])
    return events


# ----------------------------------------------------------------------
# Span-tree plumbing
# ----------------------------------------------------------------------
def _wall_spans(records: list[dict]) -> list[dict]:
    return [
        r
        for r in records
        if r.get("clock", WALL) == WALL and r.get("dur_ms") is not None
    ]


def _index(spans: list[dict]) -> tuple[dict, dict, list[dict]]:
    """``(by_id, children, roots)`` over a span list.

    A span whose parent id is unknown (dropped by a crash, or genuinely
    root) counts as a root — partial traces stay analyzable.
    """
    by_id = {s["id"]: s for s in spans}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent and parent in by_id and parent != span["id"]:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s["t0_ms"], s["id"]))
    roots.sort(key=lambda s: (s["t0_ms"], s["id"]))
    return by_id, children, roots


def _end(span: dict) -> float:
    return span["t0_ms"] + span["dur_ms"]


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def critical_path(records: list[dict]) -> dict:
    """The longest blocking chain through the wall-clock span tree.

    The root is the longest ``request`` span (the dispatch envelope on
    both the sequential and pool paths); at every node the walk descends
    into the child whose *end time* gates the parent — the blocking
    child — until it reaches a leaf.  Each step carries exact self/child
    attribution: ``self_ms`` is the node's duration minus the sum of its
    children's durations (clipped at zero against sub-µs clock-source
    skew), ``child_ms`` the children's sum.  An error-annotated request
    span with no children (a killed worker's flushed partial) is a
    one-step path, not an error.
    """
    spans = _wall_spans(records)
    if not spans:
        return {"root": None, "root_name": None, "total_ms": 0.0, "steps": []}
    _, children, roots = _index(spans)
    candidates = [s for s in roots if s["name"] == "request"] or roots
    root = max(candidates, key=lambda s: (s["dur_ms"], s["id"]))
    t_base = min(s["t0_ms"] for s in spans)
    steps = []
    node = root
    while node is not None:
        kids = children.get(node["id"], [])
        child_ms = sum(k["dur_ms"] for k in kids)
        steps.append(
            {
                "name": node["name"],
                "id": node["id"],
                "lane": node["lane"],
                "t0_ms": _r(node["t0_ms"] - t_base),
                "dur_ms": _r(node["dur_ms"]),
                "self_ms": _r(max(node["dur_ms"] - child_ms, 0.0)),
                "child_ms": _r(child_ms),
                "error": str(node["attrs"]["error"]) if node.get("attrs", {}).get("error") else None,
            }
        )
        node = max(kids, key=lambda s: (_end(s), s["id"])) if kids else None
    return {
        "root": root["id"],
        "root_name": root["name"],
        "total_ms": _r(root["dur_ms"]),
        "steps": steps,
        "leaf": steps[-1]["name"],
    }


# ----------------------------------------------------------------------
# Per-stage and per-lane breakdowns
# ----------------------------------------------------------------------
def _median(sorted_values: list[float]) -> float:
    n = len(sorted_values)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def stage_breakdown(records: list[dict]) -> dict:
    """Latency aggregates per span name, plus kernel-stage frame attribution.

    ``stages`` maps every wall span name to count/total/self/p50/max
    milliseconds (self = duration minus own children, summed over all
    spans of that name).  ``frame_attribution`` answers the acceptance
    question directly: of all ``frame`` span time, how much do the named
    kernel stages (:data:`KERNEL_STAGES`) account for.
    """
    spans = _wall_spans(records)
    _, children, _ = _index(spans)
    groups: dict[str, list[dict]] = {}
    for span in spans:
        groups.setdefault(span["name"], []).append(span)
    stages = {}
    for name in sorted(groups):
        group = groups[name]
        durs = sorted(s["dur_ms"] for s in group)
        self_ms = sum(
            max(s["dur_ms"] - sum(k["dur_ms"] for k in children.get(s["id"], [])), 0.0)
            for s in group
        )
        stages[name] = {
            "count": len(group),
            "total_ms": _r(sum(durs)),
            "self_ms": _r(self_ms),
            "p50_ms": _r(_median(durs)),
            "max_ms": _r(durs[-1]),
        }
    frame_ms = stages.get("frame", {}).get("total_ms", 0.0)
    per_stage = {
        name: stages.get(name, {}).get("total_ms", 0.0) for name in KERNEL_STAGES
    }
    stage_ms = sum(per_stage.values())
    return {
        "stages": stages,
        "frame_attribution": {
            "frame_ms": _r(frame_ms),
            "kernel_stage_ms": _r(stage_ms),
            "per_stage": {k: _r(v) for k, v in per_stage.items()},
            "attributed_fraction": _r(stage_ms / frame_ms) if frame_ms else 0.0,
        },
    }


def _merged_busy_ms(spans: list[dict]) -> float:
    """Total covered time of a span set (union of intervals)."""
    intervals = sorted((s["t0_ms"], _end(s)) for s in spans)
    busy = 0.0
    cur_lo = cur_hi = None
    for lo, hi in intervals:
        if cur_hi is None or lo > cur_hi:
            if cur_hi is not None:
                busy += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    if cur_hi is not None:
        busy += cur_hi - cur_lo
    return busy


def lane_breakdown(records: list[dict]) -> dict:
    """Busy time and utilization per lane over the trace's wall window."""
    spans = _wall_spans(records)
    if not spans:
        return {"window_ms": 0.0, "lanes": {}}
    t_min = min(s["t0_ms"] for s in spans)
    t_max = max(_end(s) for s in spans)
    window = t_max - t_min
    by_lane: dict[str, list[dict]] = {}
    for span in spans:
        by_lane.setdefault(span["lane"], []).append(span)
    lanes = {}
    for lane in sorted(by_lane):
        busy = _merged_busy_ms(by_lane[lane])
        lanes[lane] = {
            "spans": len(by_lane[lane]),
            "busy_ms": _r(busy),
            "utilization": _r(busy / window) if window else 0.0,
        }
    return {"window_ms": _r(window), "lanes": lanes}


# ----------------------------------------------------------------------
# Timelines from span boundaries
# ----------------------------------------------------------------------
def _step_timeline(intervals: list[tuple[float, float]], t_base: float) -> dict:
    """A step function (+1 at each start, -1 at each end) over intervals."""
    if not intervals:
        return {"max": 0, "mean": 0.0, "samples": []}
    deltas: dict[float, int] = {}
    for lo, hi in intervals:
        deltas[lo] = deltas.get(lo, 0) + 1
        deltas[hi] = deltas.get(hi, 0) - 1
    samples = []
    depth = 0
    peak = 0
    area = 0.0
    prev_t = None
    for t in sorted(deltas):
        if prev_t is not None:
            area += depth * (t - prev_t)
        depth += deltas[t]
        peak = max(peak, depth)
        samples.append([_r(t - t_base), depth])
        prev_t = t
    span = sorted(deltas)[-1] - sorted(deltas)[0]
    return {
        "max": peak,
        "mean": _r(area / span) if span else 0.0,
        "samples": samples,
    }


def occupancy_timeline(records: list[dict], lane_prefix: str = "worker-") -> dict:
    """Concurrent busy workers over time, from dispatch-envelope spans.

    Counts the parent-side ``request`` spans on worker lanes (one per
    in-flight work unit); a sequential trace has no worker lanes, so the
    timeline falls back to the root spans of the ``main`` lane — the
    in-process analogue of a one-worker pool.
    """
    spans = _wall_spans(records)
    units = [
        s
        for s in spans
        if s["name"] == "request" and s["lane"].startswith(lane_prefix)
    ]
    if not units:
        _, _, roots = _index(spans)
        units = [s for s in roots if s["name"] == "request"]
    if not units:
        return {"max": 0, "mean": 0.0, "samples": []}
    t_base = min(s["t0_ms"] for s in spans)
    return _step_timeline([(s["t0_ms"], _end(s)) for s in units], t_base)


def queue_depth_timeline(records: list[dict]) -> dict:
    """Scheduler queue depth over virtual time, from ``queue_wait`` spans.

    Each virtual ``queue_wait`` span covers exactly one request's stay in
    the admission queue (arrival → dispatch), so the interval overlap
    count *is* the queue depth — derived purely from span boundaries,
    no counters consulted.  Empty for traces without a decision plane.
    """
    waits = [
        r
        for r in records
        if r.get("clock") == VIRTUAL
        and r.get("dur_ms") is not None
        and r["name"] == "queue_wait"
    ]
    return _step_timeline([(s["t0_ms"], _end(s)) for s in waits], 0.0)


# ----------------------------------------------------------------------
# The full report and the diff engine
# ----------------------------------------------------------------------
def analyze(records: list[dict]) -> dict:
    """The full analysis report over one trace's span records.

    A pure function with deterministic ordering and fixed rounding:
    ``json.dumps(analyze(records), sort_keys=True)`` is byte-identical
    across repeated runs on the same input.
    """
    wall = _wall_spans(records)
    closed = sorted(
        str((r.get("attrs") or {}).get("worker"))
        for r in records
        if r["name"] == "lane_closed" and r.get("dur_ms") is None
    )
    return {
        "spans": len(records),
        "wall_spans": len(wall),
        "lanes_closed": closed,
        "critical_path": critical_path(records),
        "stages": stage_breakdown(records),
        "lanes": lane_breakdown(records),
        "worker_occupancy": occupancy_timeline(records),
        "queue_depth": queue_depth_timeline(records),
    }


def diff_analyses(base: dict, current: dict) -> dict:
    """Attribute a regression between two analyses to stages and lanes.

    ``base``/``current`` are :func:`analyze` outputs — from two trace
    files, or a committed ``BENCH_<name>.json`` baseline's embedded
    ``analysis`` vs a fresh run.  Stages are ranked by their total-time
    delta (positive = current slower); ``attribution`` names the stage
    that accounts for the largest share of the regression, which is the
    "which stage regressed" answer the diff exists to give.
    """

    def stage_totals(analysis: dict) -> dict[str, dict]:
        return (analysis.get("stages") or {}).get("stages") or {}

    def lane_utils(analysis: dict) -> dict[str, dict]:
        return (analysis.get("lanes") or {}).get("lanes") or {}

    base_stages, cur_stages = stage_totals(base), stage_totals(current)
    stages = {}
    for name in sorted(set(base_stages) | set(cur_stages)):
        b = base_stages.get(name, {})
        c = cur_stages.get(name, {})
        stages[name] = {
            "base_ms": _r(b.get("total_ms", 0.0)),
            "current_ms": _r(c.get("total_ms", 0.0)),
            "delta_ms": _r(c.get("total_ms", 0.0) - b.get("total_ms", 0.0)),
            "base_count": b.get("count", 0),
            "current_count": c.get("count", 0),
        }
    regressions = sorted(
        (name for name, d in stages.items() if d["delta_ms"] > 0),
        key=lambda name: (-stages[name]["delta_ms"], name),
    )
    base_lanes, cur_lanes = lane_utils(base), lane_utils(current)
    lanes = {}
    for lane in sorted(set(base_lanes) | set(cur_lanes)):
        b = base_lanes.get(lane, {})
        c = cur_lanes.get(lane, {})
        lanes[lane] = {
            "base_utilization": _r(b.get("utilization", 0.0)),
            "current_utilization": _r(c.get("utilization", 0.0)),
            "delta": _r(c.get("utilization", 0.0) - b.get("utilization", 0.0)),
        }
    base_total = (base.get("critical_path") or {}).get("total_ms", 0.0)
    cur_total = (current.get("critical_path") or {}).get("total_ms", 0.0)
    return {
        "critical_path_ms": {
            "base": _r(base_total),
            "current": _r(cur_total),
            "delta": _r(cur_total - base_total),
        },
        "stages": stages,
        "lanes": lanes,
        "regressions": regressions,
        "attribution": regressions[0] if regressions else None,
    }
