"""Span-based tracer: explicit clocks, parent/child links, cheap recording.

A *span* is a plain dict — ``{"id", "parent", "name", "lane", "clock",
"t0_ms", "dur_ms", "attrs"}`` — so records pickle across the worker result
pipe and serialize to JSON without any schema layer.  ``dur_ms is None``
marks an instant event (a point, not an interval).

Two clock domains coexist in one trace:

* ``"wall"`` — real time.  ``t0_ms`` is unix-epoch milliseconds
  (``time.time_ns() / 1e6``), which is the one clock every process on the
  machine shares, so worker-side spans land at the right offset inside the
  parent's dispatch window without any cross-process clock handshake.
  Durations are measured with ``time.perf_counter`` (monotonic).
* ``"virtual"`` — the scheduler's deterministic decision clock.  Virtual
  spans are *recorded from* already-decided quantities (arrival, queue
  wait, service), never measured, so tracing cannot perturb the decision
  plane.

``Tracer.span`` is a context manager that maintains a thread-local stack:
nested ``with`` blocks become parent/child links, and a child with no
explicit lane inherits the enclosing span's lane (stage spans recorded
deep inside the render kernels land on the worker's lane automatically).

Workers own a private ``Tracer`` and ``drain()`` it after every task; the
parent ``ingest()``s the shipped records, re-parenting the roots under its
own send→receive span so lane attribution and nesting survive process
boundaries.  Span ids are ``"<origin>:<n>"`` — give each process a unique
``origin`` and ids never collide after ingestion.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable

__all__ = ["WALL", "VIRTUAL", "Tracer", "TracerStageHook"]

WALL = "wall"
VIRTUAL = "virtual"


def wall_now_ms() -> float:
    """The wall clock spans use for ``t0_ms`` (unix-epoch milliseconds)."""
    return time.time_ns() / 1e6


class _SpanHandle:
    """One in-flight ``with tracer.span(...)`` block.

    Exposes ``span_id`` (allocated at entry, so children observe their
    parent before it closes) and, after exit, ``dur_ms``.
    """

    __slots__ = ("_tracer", "name", "lane", "attrs", "span_id", "parent", "t0_ms", "_t0_perf", "dur_ms", "_obs_token")

    def __init__(self, tracer: "Tracer", name: str, lane: str | None, attrs: dict | None):
        self._tracer = tracer
        self.name = name
        self.lane = lane
        self.attrs = attrs
        self.span_id: str | None = None
        self.parent: str | None = None
        self.dur_ms: float | None = None

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        enclosing = stack[-1] if stack else None
        if enclosing is not None:
            self.parent = enclosing.span_id
            if self.lane is None:
                self.lane = enclosing.lane
        if self.lane is None:
            self.lane = tracer.default_lane
        self.span_id = tracer._next_id()
        observer = tracer.observer
        self._obs_token = None if observer is None else observer.span_enter(self.name)
        self.t0_ms = wall_now_ms()
        self._t0_perf = time.perf_counter()
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_ms = (time.perf_counter() - self._t0_perf) * 1e3
        observer = self._tracer.observer
        if observer is not None:
            observer.span_exit(self.name, self._obs_token)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        attrs = self.attrs
        if exc_type is not None:
            attrs = dict(attrs or ())
            attrs["error"] = exc_type.__name__
        self._tracer.record(
            self.name,
            lane=self.lane,
            t0_ms=self.t0_ms,
            dur_ms=self.dur_ms,
            parent=self.parent,
            attrs=attrs,
            span_id=self.span_id,
        )
        return False


class Tracer:
    """Collects span records; thread-safe appends, explicit drain/ingest."""

    def __init__(self, origin: str = "main", default_lane: str = "main"):
        self.origin = origin
        self.default_lane = default_lane
        #: Optional span observer — an object with ``span_enter(name) ->
        #: token`` / ``span_exit(name, token)`` called at ``with``-span
        #: entry and exit (the live profiling plane's hook: stage-stack
        #: tracking for the CPU sampler, per-span memory attribution).
        #: ``None`` (default) costs one attribute read per span.
        self.observer = None
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._seq = 0
        self._local = threading.local()

    # -- internal ----------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{self.origin}:{self._seq}"

    # -- recording ---------------------------------------------------------

    def record(
        self,
        name: str,
        *,
        lane: str | None = None,
        t0_ms: float,
        dur_ms: float | None = None,
        parent: str | None = None,
        clock: str = WALL,
        attrs: dict | None = None,
        span_id: str | None = None,
    ) -> str:
        """Append one explicit-clock span (or instant, if ``dur_ms`` is None)."""
        if span_id is None:
            span_id = self._next_id()
        entry = {
            "id": span_id,
            "parent": parent,
            "name": name,
            "lane": lane if lane is not None else self.default_lane,
            "clock": clock,
            "t0_ms": float(t0_ms),
            "dur_ms": None if dur_ms is None else float(dur_ms),
            "attrs": dict(attrs) if attrs else {},
        }
        with self._lock:
            self._records.append(entry)
        return span_id

    def instant(
        self,
        name: str,
        *,
        lane: str | None = None,
        t_ms: float,
        clock: str = WALL,
        attrs: dict | None = None,
    ) -> str:
        """Record a point event (a span with no duration)."""
        return self.record(name, lane=lane, t0_ms=t_ms, dur_ms=None, clock=clock, attrs=attrs)

    def span(self, name: str, lane: str | None = None, attrs: dict | None = None) -> _SpanHandle:
        """A wall-clock span context manager; nests via a thread-local stack."""
        return _SpanHandle(self, name, lane, attrs)

    # -- collection --------------------------------------------------------

    @property
    def spans(self) -> list[dict]:
        """A snapshot copy of every record collected so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def spans_since(self, cursor: int = 0) -> tuple[list[dict], int]:
        """Records appended since ``cursor`` plus the new cursor.

        The cursor is an index into the record list: a client tails the
        trace by passing back the cursor each call and receiving only the
        spans recorded in between (the ``/trace.jsonl`` endpoint's
        incremental contract).  Cursors are only meaningful on tracers
        that are never :meth:`drain`-ed (the parent-side tracer; worker
        tracers drain after every task).  An out-of-range cursor clamps.
        """
        with self._lock:
            start = max(0, min(int(cursor), len(self._records)))
            return list(self._records[start:]), len(self._records)

    def drain(self) -> list[dict]:
        """Pop and return all records (workers ship these after each task)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def ingest(
        self,
        records: Iterable[dict],
        *,
        parent: str | None = None,
        lane: str | None = None,
    ) -> int:
        """Adopt records drained from another tracer (e.g. a worker's).

        Root records (``parent is None``) are re-parented under ``parent``
        so a worker's per-task trees hang off the executor's send→receive
        span; ``lane`` (if given) overrides the lane of every record.
        """
        adopted = []
        for record in records:
            if parent is not None and record.get("parent") is None:
                record = dict(record, parent=parent)
            if lane is not None:
                record = dict(record, lane=lane)
            adopted.append(record)
        with self._lock:
            self._records.extend(adopted)
        return len(adopted)


class TracerStageHook:
    """Adapter installing a :class:`Tracer` as the render-kernel stage hook.

    ``stage(name, **attrs)`` opens a span with no explicit lane, so stage
    spans inherit the lane of whatever frame/shard span encloses them.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def stage(self, name: str, **attrs: Any):
        return self.tracer.span(name, attrs=attrs or None)
