"""Per-process resource sampling from ``/proc`` — CPU%, RSS, ctx switches.

The live resource plane needs no agent inside the observed process: on
Linux, ``/proc/<pid>/stat`` and ``/proc/<pid>/status`` expose cumulative
CPU ticks, resident-set size and context-switch counts to any reader.
The executor therefore samples its *workers* from the parent — reads are
piggybacked on the replies already draining the result pipes and on
``health()`` polls, so liveness-plus-resources costs **zero new protocol
traffic** — and the telemetry server samples its own serving process on
every ``/metrics`` scrape.

CPU% is a two-point estimate: the sampler remembers the previous
``(cpu_ticks, wall_ns)`` per pid and converts the deltas into percent of
one core (200.0 = two cores busy).  The first sample of a pid has no
baseline and reports ``cpu_percent=None``; callers treat ``None`` as
"unknown", never as zero — the distinction matters to the watchdog's
busy-but-progressing classification.

Everything degrades gracefully off Linux (or on a hardened ``/proc``):
sampling returns ``None`` and every consumer keeps its previous
behaviour, so the resource plane is strictly additive.
"""

from __future__ import annotations

import os
import time

__all__ = [
    "CPU_GAUGE",
    "RSS_GAUGE",
    "CTX_GAUGE",
    "ResourceSampler",
    "diff_resources",
    "read_proc_sample",
    "record_resource_gauges",
    "resources_from_snapshot",
]

#: CPU percent of one core, per worker (two-point /proc estimate).
CPU_GAUGE = "repro_worker_cpu_percent"
#: Resident-set size in bytes, per worker.
RSS_GAUGE = "repro_worker_rss_bytes"
#: Cumulative context switches, per worker, labelled voluntary/involuntary.
CTX_GAUGE = "repro_worker_ctx_switches"

_CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_proc_sample(pid: int) -> dict | None:
    """One raw ``/proc/<pid>`` reading, or ``None`` when unavailable.

    Returns ``{"cpu_ticks", "rss_bytes", "voluntary_ctx",
    "involuntary_ctx", "t_ns"}`` — cumulative user+system clock ticks,
    resident-set bytes, cumulative context switches, and the wall stamp
    the reading was taken at.  ``None`` on any failure (no ``/proc``,
    pid gone, permission): resource sampling is best-effort by contract.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            stat = fh.read().decode("ascii", "replace")
        # The comm field is parenthesised and may itself contain spaces
        # or parens; everything after the *last* ')' is fixed-position.
        fields = stat[stat.rindex(")") + 2 :].split()
        # Post-comm indices (0-based): utime=11, stime=12, rss pages=21.
        utime, stime = int(fields[11]), int(fields[12])
        rss_bytes = int(fields[21]) * _PAGE_SIZE
        voluntary = involuntary = 0
        with open(f"/proc/{pid}/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"voluntary_ctxt_switches:"):
                    voluntary = int(line.split()[1])
                elif line.startswith(b"nonvoluntary_ctxt_switches:"):
                    involuntary = int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return {
        "cpu_ticks": utime + stime,
        "rss_bytes": rss_bytes,
        "voluntary_ctx": voluntary,
        "involuntary_ctx": involuntary,
        "t_ns": time.time_ns(),
    }


class ResourceSampler:
    """Two-point CPU%/RSS/ctx-switch sampler over a set of pids.

    ``sample(pid)`` returns ``None`` off Linux, else a dict with
    ``cpu_percent`` (``None`` on the pid's first reading — no baseline
    yet), ``rss_bytes``, ``voluntary_ctx`` and ``involuntary_ctx``.
    State is one small dict entry per pid; :meth:`forget` drops a pid
    when its process is replaced so a recycled pid cannot inherit a
    stale baseline.
    """

    def __init__(self) -> None:
        self._last: dict[int, dict] = {}

    def sample(self, pid: int) -> dict | None:
        raw = read_proc_sample(pid)
        if raw is None:
            return None
        last = self._last.get(pid)
        self._last[pid] = raw
        cpu_percent = None
        if last is not None and raw["t_ns"] > last["t_ns"]:
            dt_s = (raw["t_ns"] - last["t_ns"]) / 1e9
            dcpu_s = (raw["cpu_ticks"] - last["cpu_ticks"]) / _CLK_TCK
            cpu_percent = max(0.0, 100.0 * dcpu_s / dt_s)
        return {
            "cpu_percent": cpu_percent,
            "rss_bytes": raw["rss_bytes"],
            "voluntary_ctx": raw["voluntary_ctx"],
            "involuntary_ctx": raw["involuntary_ctx"],
        }

    def forget(self, pid: int) -> None:
        self._last.pop(pid, None)


def record_resource_gauges(registry, sample: dict, labels: dict) -> None:
    """Mirror one resource ``sample`` into the per-worker gauges.

    ``cpu_percent=None`` (first reading) records nothing for the CPU
    gauge — a gauge must never claim 0% for "unknown".
    """
    if sample.get("cpu_percent") is not None:
        registry.gauge(CPU_GAUGE, labels).set(sample["cpu_percent"])
    registry.gauge(RSS_GAUGE, labels).set(sample["rss_bytes"])
    for kind in ("voluntary", "involuntary"):
        registry.gauge(CTX_GAUGE, {**labels, "kind": kind}).set(
            sample[f"{kind}_ctx"]
        )


def resources_from_snapshot(entries: list[dict]) -> dict:
    """The per-worker resource table hiding in a metrics snapshot.

    Reassembles the ``repro_worker_*`` gauge families (as recorded by
    the executor and parsed back by ``parse_prometheus_snapshot``) into
    ``{"workers": {worker_label: {cpu_percent, rss_bytes,
    ctx_switches: {voluntary, involuntary}, sample_ms}}}`` — the shape
    the ``repro-obs`` report and its resource diff consume.  Empty dict
    when the snapshot carries no resource gauges.
    """
    workers: dict[str, dict] = {}

    def worker_entry(labels: dict) -> dict | None:
        worker = labels.get("worker")
        if worker is None:
            return None
        return workers.setdefault(
            worker, {"cpu_percent": None, "rss_bytes": None, "ctx_switches": {}}
        )

    for entry in entries:
        if entry.get("kind") != "gauge":
            continue
        name, labels = entry["name"], entry.get("labels", {})
        target = worker_entry(labels)
        if target is None:
            continue
        if name == CPU_GAUGE:
            target["cpu_percent"] = entry["value"]
        elif name == RSS_GAUGE:
            target["rss_bytes"] = entry["value"]
        elif name == CTX_GAUGE and "kind" in labels:
            target["ctx_switches"][labels["kind"]] = entry["value"]
        else:
            continue
        if "sample_ms" in entry:
            target["sample_ms"] = max(target.get("sample_ms", 0), entry["sample_ms"])
    return {"workers": dict(sorted(workers.items()))} if workers else {}


def diff_resources(base: dict, current: dict) -> dict:
    """Per-worker deltas between two resource tables (``repro-obs`` diff).

    Workers present on only one side keep their single reading with no
    delta — a changed pool size is itself worth surfacing, not an error.
    """
    base_workers = base.get("workers", {})
    current_workers = current.get("workers", {})
    out: dict[str, dict] = {}
    for worker in sorted(set(base_workers) | set(current_workers)):
        b, c = base_workers.get(worker), current_workers.get(worker)
        entry: dict = {"base": b, "current": c}
        if b is not None and c is not None:
            if b.get("rss_bytes") is not None and c.get("rss_bytes") is not None:
                entry["rss_delta_bytes"] = c["rss_bytes"] - b["rss_bytes"]
            if b.get("cpu_percent") is not None and c.get("cpu_percent") is not None:
                entry["cpu_delta_percent"] = c["cpu_percent"] - b["cpu_percent"]
        out[worker] = entry
    return {"workers": out}
