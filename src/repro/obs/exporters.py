"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSON lines.

Chrome trace layout (open in Perfetto or chrome://tracing):

* pid 1, "wall clock" — one thread (lane) per worker slot plus ``main``;
  wall spans become ``"X"`` complete events whose microsecond timestamps
  are rebased to the earliest span, so nesting (request → job → frame →
  shard → stages) renders as stacked slices per lane.
* pid 2, "virtual clock" — the scheduler's deterministic timeline;
  decision-log instants become ``"i"`` events and virtual request spans
  become ``"b"``/``"e"`` async pairs (requests of one client overlap, so
  they cannot be complete events on a single thread track).

``validate_chrome_trace`` is the schema check CI's obs-smoke job runs:
events well-formed, wall spans strictly nested per lane, expected worker
lanes present, and every shard/render/decode span reachable from a
``request`` root through the documented chain.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import WALL, Tracer

__all__ = [
    "chrome_trace",
    "spans_jsonl",
    "prometheus_text",
    "parse_prometheus_text",
    "parse_prometheus_labels",
    "parse_prometheus_snapshot",
    "validate_chrome_trace",
    "export_trace",
    "export_metrics",
    "timeline_html",
    "export_html",
]

_WALL_PID = 1
_VIRTUAL_PID = 2

# Tolerance (µs) for nesting checks: span starts come from time_ns and
# durations from perf_counter deltas, so sibling boundaries can disagree
# by sub-µs clock-source skew.
_NEST_EPS_US = 5.0


def _lane_sort_key(lane: str) -> tuple:
    if lane == "main":
        return (0, 0, lane)
    if lane.startswith("worker-"):
        suffix = lane.split("-", 1)[1]
        if suffix.isdigit():
            return (1, int(suffix), lane)
    return (2, 0, lane)


def _lane_tids(lanes: Iterable[str]) -> dict[str, int]:
    return {lane: i + 1 for i, lane in enumerate(sorted(set(lanes), key=_lane_sort_key))}


def chrome_trace(records: list[dict]) -> dict:
    """Render span records as a Chrome ``trace_event`` JSON object."""
    wall = [r for r in records if r.get("clock", WALL) == WALL]
    virtual = [r for r in records if r.get("clock", WALL) != WALL]
    events: list[dict] = []

    def metadata(pid: int, process: str, tids: dict[str, int]) -> None:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process},
        })
        for lane, tid in tids.items():
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane},
            })

    def args_of(record: dict) -> dict:
        args = {"span_id": record["id"]}
        if record.get("parent"):
            args["parent"] = record["parent"]
        args.update(record.get("attrs") or {})
        return args

    if wall:
        tids = _lane_tids(r["lane"] for r in wall)
        metadata(_WALL_PID, "wall clock", tids)
        t0 = min(r["t0_ms"] for r in wall)
        for r in wall:
            base = {
                "name": r["name"], "pid": _WALL_PID, "tid": tids[r["lane"]],
                "ts": (r["t0_ms"] - t0) * 1e3, "args": args_of(r),
            }
            if r["dur_ms"] is None:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                events.append({**base, "ph": "X", "dur": r["dur_ms"] * 1e3})

    if virtual:
        tids = _lane_tids(r["lane"] for r in virtual)
        metadata(_VIRTUAL_PID, "virtual clock", tids)
        for r in virtual:
            base = {
                "name": r["name"], "pid": _VIRTUAL_PID, "tid": tids[r["lane"]],
                "ts": r["t0_ms"] * 1e3, "args": args_of(r),
            }
            if r["dur_ms"] is None:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                # Async begin/end pair: one client's requests overlap.
                events.append({**base, "ph": "b", "cat": r["name"], "id": r["id"]})
                events.append({
                    "ph": "e", "cat": r["name"], "id": r["id"], "name": r["name"],
                    "pid": _VIRTUAL_PID, "tid": tids[r["lane"]],
                    "ts": (r["t0_ms"] + r["dur_ms"]) * 1e3,
                })

    order = {"M": 0}
    events.sort(key=lambda e: (order.get(e["ph"], 1), e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_jsonl(records: list[dict]) -> str:
    """Span records as JSON lines (one raw record per line)."""
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def export_trace(path: str, tracer: Tracer) -> None:
    """Write a tracer's spans to ``path`` — ``.jsonl`` selects the raw
    JSON-lines dump, anything else the Chrome trace JSON."""
    records = tracer.spans
    with open(path, "w", encoding="utf-8") as fh:
        if str(path).endswith(".jsonl"):
            fh.write(spans_jsonl(records))
        else:
            json.dump(chrome_trace(records), fh, indent=1)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _fmt_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_label_value(value) -> str:
    # Exposition format escapes exactly backslash, double-quote and
    # newline inside label values (backslash first, or it re-escapes the
    # escapes it just produced).
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, _escape_label_value(v)) for k, v in merged.items()
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Gauges carry their monotonic ``sample_ms`` stamp as the exposition
    format's optional sample timestamp, so a scraper can tell a fresh
    sample from a stale one even when the value is unchanged between
    scrapes.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, series in registry.series():
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {series.kind}")
        if series.kind == "histogram":
            cumulative = series.cumulative()
            for bound, count in zip(series.buckets, cumulative):
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': _fmt_value(bound)})} {count}"
                )
            lines.append(f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {cumulative[-1]}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(series.sum)}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {series.count}")
        else:
            stamp = ""
            if series.kind == "gauge" and series.sample_ms is not None:
                stamp = f" {series.sample_ms}"
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(series.value)}{stamp}")
    return "\n".join(lines) + "\n" if lines else ""


def _split_sample_line(line: str) -> tuple[str, float, int | None]:
    """One exposition sample line as ``(series_key, value, timestamp)``.

    Label values may contain spaces, so the series key runs through the
    *last* ``}`` when labels are present; the remainder is the value plus
    the optional integer sample timestamp.  Raises ``ValueError`` on
    anything else.
    """
    if "}" in line:
        end = line.rindex("}") + 1
        series, rest = line[:end], line[end:].split()
    else:
        parts = line.split()
        series, rest = parts[0], parts[1:]
    if len(rest) == 1:
        return series, float(rest[0]), None
    if len(rest) == 2:
        return series, float(rest[0]), int(rest[1])
    raise ValueError(f"expected 'series value [timestamp]', got {line!r}")


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{"name{labels}": value}``.

    A deliberately small parser — enough for tests and the CI smoke job
    to assert the exposition is well-formed and specific series landed.
    Raises ``ValueError`` on any malformed line.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            if line.startswith("# TYPE"):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            continue
        try:
            series, value, _ = _split_sample_line(line)
            out[series] = value
        except (ValueError, IndexError) as exc:
            raise ValueError(f"line {lineno}: bad sample line {line!r}") from exc
        if "{" in series and not series.endswith("}"):
            raise ValueError(f"line {lineno}: unbalanced labels in {line!r}")
    return out


_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}


def parse_prometheus_labels(series: str) -> tuple[str, dict[str, str]]:
    """Split a series key (``name{k="v",...}``) into name + labels.

    The inverse of ``_fmt_labels``: label values are unescaped
    (``\\\\`` → backslash, ``\\"`` → quote, ``\\n`` → newline), so a
    hostile label value survives the exposition round trip exactly.
    Raises ``ValueError`` on malformed label bodies.
    """
    if "{" not in series:
        return series, {}
    name, _, body = series.partition("{")
    if not body.endswith("}"):
        raise ValueError(f"unbalanced labels in {series!r}")
    body = body[:-1]
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    try:
        while i < n:
            j = body.index("=", i)
            key = body[i:j]
            if body[j + 1] != '"':
                raise ValueError
            i = j + 2
            out: list[str] = []
            while True:
                ch = body[i]
                if ch == "\\":
                    out.append(_UNESCAPE.get(body[i + 1], "\\" + body[i + 1]))
                    i += 2
                elif ch == '"':
                    i += 1
                    break
                else:
                    out.append(ch)
                    i += 1
            labels[key] = "".join(out)
            if i < n:
                if body[i] != ",":
                    raise ValueError
                i += 1
    except (ValueError, IndexError):
        raise ValueError(f"malformed label body in {series!r}") from None
    return name, labels


def parse_prometheus_snapshot(text: str) -> list[dict]:
    """Parse exposition text into registry-snapshot-shaped entries.

    The inverse of ``prometheus_text`` ∘ ``MetricsRegistry.snapshot``:
    counters/gauges come back as ``{"kind", "name", "labels", "value"}``
    and the ``_bucket``/``_sum``/``_count`` sample families of each
    histogram are reassembled into per-bucket (non-cumulative) counts —
    the shape ``merge()`` and the alert engine consume.  Series kinds
    come from the ``# TYPE`` lines.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float, int | None]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            if line.startswith("# TYPE"):
                parts = line.split()
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
                types[parts[2]] = parts[3]
            continue
        try:
            series, value, stamp = _split_sample_line(line)
            name, labels = parse_prometheus_labels(series)
            samples.append((name, labels, value, stamp))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"line {lineno}: bad sample line {line!r}") from exc

    def hist_base(name: str) -> str | None:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if types.get(base) == "histogram":
                    return base
        return None

    entries: dict[tuple, dict] = {}
    hist_buckets: dict[tuple, list[tuple[float, int]]] = {}
    for name, labels, value, stamp in samples:
        base = hist_base(name)
        if base is not None:
            key_labels = {k: v for k, v in labels.items() if k != "le"}
            key = (base, tuple(sorted(key_labels.items())))
            entry = entries.setdefault(
                key,
                {
                    "kind": "histogram",
                    "name": base,
                    "labels": key_labels,
                    "buckets": [],
                    "counts": [],
                    "sum": 0.0,
                    "count": 0,
                },
            )
            if name.endswith("_bucket"):
                hist_buckets.setdefault(key, []).append(
                    (float(labels["le"]), int(value))
                )
            elif name.endswith("_sum"):
                entry["sum"] = value
            else:
                entry["count"] = int(value)
        else:
            kind = types.get(name, "gauge")
            key = (name, tuple(sorted(labels.items())))
            entries[key] = {
                "kind": kind,
                "name": name,
                "labels": labels,
                "value": value,
            }
            if kind == "gauge" and stamp is not None:
                entries[key]["sample_ms"] = stamp
    for key, bounds in hist_buckets.items():
        bounds.sort(key=lambda b: b[0])
        cumulative = [count for _, count in bounds]
        finite = [bound for bound, _ in bounds if bound != float("inf")]
        counts = [
            c - (cumulative[i - 1] if i else 0) for i, c in enumerate(cumulative)
        ]
        entries[key]["buckets"] = finite
        entries[key]["counts"] = counts
    return [entries[key] for key in sorted(entries)]


def export_metrics(path: str, registry: MetricsRegistry) -> None:
    """Write the registry to ``path`` in Prometheus text format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


# ---------------------------------------------------------------------------
# Chrome-trace validation (used by tests and the CI obs-smoke job)
# ---------------------------------------------------------------------------

_REQUIRED_KEYS = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "b": ("name", "pid", "tid", "ts", "id", "cat"),
    "e": ("name", "pid", "tid", "ts", "id", "cat"),
    "M": ("name", "pid", "args"),
}

# The documented span chain: what must appear among the ancestors of a
# leaf-ish span for the trace to count as properly nested.
_CHAIN_ANCESTORS = {
    "shard": {"frame", "job", "request"},
    "render": {"frame", "job", "request"},
    "frame": {"job", "request"},
    "decode": {"job", "request"},
}


def validate_chrome_trace(payload: dict, expect_lanes: Iterable[str] = ()) -> dict:
    """Check a Chrome-trace payload's schema; raise ``ValueError`` if bad.

    Verifies: well-formed events (required keys per phase), wall-clock
    spans properly nested per lane (no partial overlaps), every lane in
    ``expect_lanes`` present, every ``b`` has a matching ``e``, and every
    wall shard/render/decode/frame span sits under its documented
    request→job→frame ancestry.  Returns a small summary dict.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")

    lanes: dict[tuple[int, int], str] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"event {i} malformed: {event!r}")
        required = _REQUIRED_KEYS.get(event["ph"])
        if required is None:
            raise ValueError(f"event {i}: unknown phase {event['ph']!r}")
        missing = [k for k in required if k not in event]
        if missing:
            raise ValueError(f"event {i} ({event['ph']!r}) missing {missing}")
        if event["ph"] == "M" and event["name"] == "thread_name":
            lanes[(event["pid"], event["tid"])] = event["args"]["name"]

    lane_names = set(lanes.values())
    for lane in expect_lanes:
        if lane not in lane_names:
            raise ValueError(f"expected lane {lane!r} absent (have {sorted(lane_names)})")

    # Async begin/end pairing on the virtual track.
    open_async: dict[tuple, int] = {}
    for event in events:
        if event["ph"] == "b":
            key = (event["cat"], event["id"])
            open_async[key] = open_async.get(key, 0) + 1
        elif event["ph"] == "e":
            key = (event["cat"], event["id"])
            if open_async.get(key, 0) <= 0:
                raise ValueError(f"async end without begin: {key}")
            open_async[key] -= 1
    dangling = {k: v for k, v in open_async.items() if v}
    if dangling:
        raise ValueError(f"async begins without ends: {sorted(dangling)}")

    # Per-lane strict nesting of wall complete events + ancestry chains.
    span_names: dict[str, int] = {}
    by_lane: dict[tuple[int, int], list[dict]] = {}
    for event in events:
        if event["ph"] == "X":
            by_lane.setdefault((event["pid"], event["tid"]), []).append(event)
    for key, lane_events in by_lane.items():
        lane = lanes.get(key, str(key))
        lane_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[str, float]] = []  # (name, end_ts)
        for event in lane_events:
            end = event["ts"] + event["dur"]
            while stack and event["ts"] >= stack[-1][1] - _NEST_EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + _NEST_EPS_US:
                raise ValueError(
                    f"lane {lane!r}: span {event['name']!r} at ts={event['ts']:.1f} "
                    f"overlaps {stack[-1][0]!r} without nesting"
                )
            name = event["name"]
            span_names[name] = span_names.get(name, 0) + 1
            needed = _CHAIN_ANCESTORS.get(name)
            if needed is not None:
                ancestors = {n for n, _ in stack}
                if not needed <= ancestors:
                    raise ValueError(
                        f"lane {lane!r}: {name!r} span missing ancestors "
                        f"{sorted(needed - ancestors)} (stack: {[n for n, _ in stack]})"
                    )
            stack.append((name, end))

    return {
        "events": len(events),
        "lanes": sorted(lane_names, key=_lane_sort_key),
        "spans": dict(sorted(span_names.items())),
    }


# ---------------------------------------------------------------------------
# Self-contained HTML timeline report
# ---------------------------------------------------------------------------

_HTML_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#9c755f", "#bab0ac", "#ff9da7",
)

_HTML_HEAD = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
 body {{ font: 13px/1.5 system-ui, sans-serif; margin: 1.5em; color: #222; }}
 h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.05em; margin-top: 1.6em; }}
 .lane {{ display: flex; align-items: center; margin: 2px 0; }}
 .lane-name {{ flex: 0 0 9em; text-align: right; padding-right: .8em;
              color: #555; font-family: monospace; font-size: 11px; }}
 .lane-track {{ position: relative; flex: 1; height: 22px;
               background: #f4f4f4; border-radius: 3px; }}
 .span {{ position: absolute; top: 2px; height: 18px; border-radius: 2px;
         overflow: hidden; font-size: 10px; line-height: 18px; color: #fff;
         padding: 0 2px; box-sizing: border-box; white-space: nowrap;
         min-width: 2px; }}
 .instant {{ position: absolute; top: 0; width: 2px; height: 22px;
            background: #d62728; }}
 .axis {{ color: #888; font-size: 11px; margin: .3em 0 1em 9.8em; }}
 .legend span {{ display: inline-block; margin-right: 1em; }}
 .swatch {{ display: inline-block; width: 10px; height: 10px;
           border-radius: 2px; margin-right: 4px; }}
</style>
</head>
<body>
<h1>{title}</h1>
"""


def _html_escape(text) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def timeline_html(records: list[dict], title: str = "repro trace timeline") -> str:
    """Render span records as a self-contained HTML timeline.

    One section per clock domain, one row per lane, spans as positioned
    blocks scaled to duration with full details in the hover tooltip,
    instants as red ticks.  Pure string templating — no scripts, no
    external assets — so the report opens anywhere and diffs cleanly.
    """
    color_of: dict[str, str] = {}

    def color(name: str) -> str:
        if name not in color_of:
            color_of[name] = _HTML_PALETTE[len(color_of) % len(_HTML_PALETTE)]
        return color_of[name]

    parts = [_HTML_HEAD.format(title=_html_escape(title))]
    for clock, heading in ((WALL, "Wall clock"), ("virtual", "Virtual clock")):
        group = [r for r in records if r.get("clock", WALL) == clock]
        if not group:
            continue
        t0 = min(r["t0_ms"] for r in group)
        t1 = max(r["t0_ms"] + (r["dur_ms"] or 0.0) for r in group)
        window = max(t1 - t0, 1e-9)
        parts.append(f"<h2>{heading} · {len(group)} spans · {window:.1f} ms</h2>\n")
        lanes = sorted({r["lane"] for r in group}, key=_lane_sort_key)
        for lane in lanes:
            parts.append(
                f'<div class="lane"><div class="lane-name">{_html_escape(lane)}</div>'
                '<div class="lane-track">\n'
            )
            for r in sorted(
                (r for r in group if r["lane"] == lane),
                key=lambda r: (r["t0_ms"], -(r["dur_ms"] or 0.0)),
            ):
                left = 100.0 * (r["t0_ms"] - t0) / window
                tip = _html_escape(
                    f"{r['name']} [{r['id']}] t0={r['t0_ms'] - t0:.3f}ms "
                    + (f"dur={r['dur_ms']:.3f}ms " if r["dur_ms"] is not None else "")
                    + " ".join(f"{k}={v}" for k, v in (r.get("attrs") or {}).items())
                )
                if r["dur_ms"] is None:
                    parts.append(
                        f'<div class="instant" style="left:{left:.3f}%" title="{tip}"></div>\n'
                    )
                else:
                    width = 100.0 * r["dur_ms"] / window
                    parts.append(
                        f'<div class="span" style="left:{left:.3f}%;'
                        f'width:{width:.3f}%;background:{color(r["name"])}" '
                        f'title="{tip}">{_html_escape(r["name"])}</div>\n'
                    )
            parts.append("</div></div>\n")
        parts.append(f'<div class="axis">0 ms → {window:.1f} ms</div>\n')
    if color_of:
        parts.append('<div class="legend">')
        for name, c in color_of.items():
            parts.append(
                f'<span><span class="swatch" style="background:{c}"></span>'
                f"{_html_escape(name)}</span>"
            )
        parts.append("</div>\n")
    parts.append("</body>\n</html>\n")
    return "".join(parts)


def export_html(path: str, records: list[dict], title: str = "repro trace timeline") -> None:
    """Write the HTML timeline report for ``records`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(timeline_html(records, title=title))
