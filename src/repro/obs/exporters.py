"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSON lines.

Chrome trace layout (open in Perfetto or chrome://tracing):

* pid 1, "wall clock" — one thread (lane) per worker slot plus ``main``;
  wall spans become ``"X"`` complete events whose microsecond timestamps
  are rebased to the earliest span, so nesting (request → job → frame →
  shard → stages) renders as stacked slices per lane.
* pid 2, "virtual clock" — the scheduler's deterministic timeline;
  decision-log instants become ``"i"`` events and virtual request spans
  become ``"b"``/``"e"`` async pairs (requests of one client overlap, so
  they cannot be complete events on a single thread track).

``validate_chrome_trace`` is the schema check CI's obs-smoke job runs:
events well-formed, wall spans strictly nested per lane, expected worker
lanes present, and every shard/render/decode span reachable from a
``request`` root through the documented chain.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import WALL, Tracer

__all__ = [
    "chrome_trace",
    "spans_jsonl",
    "prometheus_text",
    "parse_prometheus_text",
    "validate_chrome_trace",
    "export_trace",
    "export_metrics",
]

_WALL_PID = 1
_VIRTUAL_PID = 2

# Tolerance (µs) for nesting checks: span starts come from time_ns and
# durations from perf_counter deltas, so sibling boundaries can disagree
# by sub-µs clock-source skew.
_NEST_EPS_US = 5.0


def _lane_sort_key(lane: str) -> tuple:
    if lane == "main":
        return (0, 0, lane)
    if lane.startswith("worker-"):
        suffix = lane.split("-", 1)[1]
        if suffix.isdigit():
            return (1, int(suffix), lane)
    return (2, 0, lane)


def _lane_tids(lanes: Iterable[str]) -> dict[str, int]:
    return {lane: i + 1 for i, lane in enumerate(sorted(set(lanes), key=_lane_sort_key))}


def chrome_trace(records: list[dict]) -> dict:
    """Render span records as a Chrome ``trace_event`` JSON object."""
    wall = [r for r in records if r.get("clock", WALL) == WALL]
    virtual = [r for r in records if r.get("clock", WALL) != WALL]
    events: list[dict] = []

    def metadata(pid: int, process: str, tids: dict[str, int]) -> None:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process},
        })
        for lane, tid in tids.items():
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane},
            })

    def args_of(record: dict) -> dict:
        args = {"span_id": record["id"]}
        if record.get("parent"):
            args["parent"] = record["parent"]
        args.update(record.get("attrs") or {})
        return args

    if wall:
        tids = _lane_tids(r["lane"] for r in wall)
        metadata(_WALL_PID, "wall clock", tids)
        t0 = min(r["t0_ms"] for r in wall)
        for r in wall:
            base = {
                "name": r["name"], "pid": _WALL_PID, "tid": tids[r["lane"]],
                "ts": (r["t0_ms"] - t0) * 1e3, "args": args_of(r),
            }
            if r["dur_ms"] is None:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                events.append({**base, "ph": "X", "dur": r["dur_ms"] * 1e3})

    if virtual:
        tids = _lane_tids(r["lane"] for r in virtual)
        metadata(_VIRTUAL_PID, "virtual clock", tids)
        for r in virtual:
            base = {
                "name": r["name"], "pid": _VIRTUAL_PID, "tid": tids[r["lane"]],
                "ts": r["t0_ms"] * 1e3, "args": args_of(r),
            }
            if r["dur_ms"] is None:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                # Async begin/end pair: one client's requests overlap.
                events.append({**base, "ph": "b", "cat": r["name"], "id": r["id"]})
                events.append({
                    "ph": "e", "cat": r["name"], "id": r["id"], "name": r["name"],
                    "pid": _VIRTUAL_PID, "tid": tids[r["lane"]],
                    "ts": (r["t0_ms"] + r["dur_ms"]) * 1e3,
                })

    order = {"M": 0}
    events.sort(key=lambda e: (order.get(e["ph"], 1), e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_jsonl(records: list[dict]) -> str:
    """Span records as JSON lines (one raw record per line)."""
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def export_trace(path: str, tracer: Tracer) -> None:
    """Write a tracer's spans to ``path`` — ``.jsonl`` selects the raw
    JSON-lines dump, anything else the Chrome trace JSON."""
    records = tracer.spans
    with open(path, "w", encoding="utf-8") as fh:
        if str(path).endswith(".jsonl"):
            fh.write(spans_jsonl(records))
        else:
            json.dump(chrome_trace(records), fh, indent=1)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _fmt_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _fmt_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in merged.items()
    )
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, series in registry.series():
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {series.kind}")
        if series.kind == "histogram":
            cumulative = series.cumulative()
            for bound, count in zip(series.buckets, cumulative):
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': _fmt_value(bound)})} {count}"
                )
            lines.append(f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {cumulative[-1]}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(series.sum)}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {series.count}")
        else:
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(series.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{"name{labels}": value}``.

    A deliberately small parser — enough for tests and the CI smoke job
    to assert the exposition is well-formed and specific series landed.
    Raises ``ValueError`` on any malformed line.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            if line.startswith("# TYPE"):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"line {lineno}: bad TYPE line {line!r}")
            continue
        try:
            series, value = line.rsplit(" ", 1)
            out[series] = float(value)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad sample line {line!r}") from exc
        if "{" in series and not series.endswith("}"):
            raise ValueError(f"line {lineno}: unbalanced labels in {line!r}")
    return out


def export_metrics(path: str, registry: MetricsRegistry) -> None:
    """Write the registry to ``path`` in Prometheus text format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


# ---------------------------------------------------------------------------
# Chrome-trace validation (used by tests and the CI obs-smoke job)
# ---------------------------------------------------------------------------

_REQUIRED_KEYS = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "b": ("name", "pid", "tid", "ts", "id", "cat"),
    "e": ("name", "pid", "tid", "ts", "id", "cat"),
    "M": ("name", "pid", "args"),
}

# The documented span chain: what must appear among the ancestors of a
# leaf-ish span for the trace to count as properly nested.
_CHAIN_ANCESTORS = {
    "shard": {"frame", "job", "request"},
    "render": {"frame", "job", "request"},
    "frame": {"job", "request"},
    "decode": {"job", "request"},
}


def validate_chrome_trace(payload: dict, expect_lanes: Iterable[str] = ()) -> dict:
    """Check a Chrome-trace payload's schema; raise ``ValueError`` if bad.

    Verifies: well-formed events (required keys per phase), wall-clock
    spans properly nested per lane (no partial overlaps), every lane in
    ``expect_lanes`` present, every ``b`` has a matching ``e``, and every
    wall shard/render/decode/frame span sits under its documented
    request→job→frame ancestry.  Returns a small summary dict.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")

    lanes: dict[tuple[int, int], str] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"event {i} malformed: {event!r}")
        required = _REQUIRED_KEYS.get(event["ph"])
        if required is None:
            raise ValueError(f"event {i}: unknown phase {event['ph']!r}")
        missing = [k for k in required if k not in event]
        if missing:
            raise ValueError(f"event {i} ({event['ph']!r}) missing {missing}")
        if event["ph"] == "M" and event["name"] == "thread_name":
            lanes[(event["pid"], event["tid"])] = event["args"]["name"]

    lane_names = set(lanes.values())
    for lane in expect_lanes:
        if lane not in lane_names:
            raise ValueError(f"expected lane {lane!r} absent (have {sorted(lane_names)})")

    # Async begin/end pairing on the virtual track.
    open_async: dict[tuple, int] = {}
    for event in events:
        if event["ph"] == "b":
            key = (event["cat"], event["id"])
            open_async[key] = open_async.get(key, 0) + 1
        elif event["ph"] == "e":
            key = (event["cat"], event["id"])
            if open_async.get(key, 0) <= 0:
                raise ValueError(f"async end without begin: {key}")
            open_async[key] -= 1
    dangling = {k: v for k, v in open_async.items() if v}
    if dangling:
        raise ValueError(f"async begins without ends: {sorted(dangling)}")

    # Per-lane strict nesting of wall complete events + ancestry chains.
    span_names: dict[str, int] = {}
    by_lane: dict[tuple[int, int], list[dict]] = {}
    for event in events:
        if event["ph"] == "X":
            by_lane.setdefault((event["pid"], event["tid"]), []).append(event)
    for key, lane_events in by_lane.items():
        lane = lanes.get(key, str(key))
        lane_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[str, float]] = []  # (name, end_ts)
        for event in lane_events:
            end = event["ts"] + event["dur"]
            while stack and event["ts"] >= stack[-1][1] - _NEST_EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + _NEST_EPS_US:
                raise ValueError(
                    f"lane {lane!r}: span {event['name']!r} at ts={event['ts']:.1f} "
                    f"overlaps {stack[-1][0]!r} without nesting"
                )
            name = event["name"]
            span_names[name] = span_names.get(name, 0) + 1
            needed = _CHAIN_ANCESTORS.get(name)
            if needed is not None:
                ancestors = {n for n, _ in stack}
                if not needed <= ancestors:
                    raise ValueError(
                        f"lane {lane!r}: {name!r} span missing ancestors "
                        f"{sorted(needed - ancestors)} (stack: {[n for n, _ in stack]})"
                    )
            stack.append((name, end))

    return {
        "events": len(events),
        "lanes": sorted(lane_names, key=_lane_sort_key),
        "spans": dict(sorted(span_names.items())),
    }
