"""Declarative SLO alerting: burn-rate, threshold and absence rules.

The rule engine evaluates metric snapshots — the exact dict shape
:meth:`MetricsRegistry.snapshot` produces and ``parse_prometheus_snapshot``
reconstructs — against a declarative rule set and emits a transition log
(``alert_firing`` / ``alert_resolved`` entries).  Evaluation is a pure
function of the ``(timestamp, snapshot)`` samples: no wall clocks, fixed
rounding, stable rule order.  Over virtual-clock metrics (the
scheduler's decision plane) the alert log is therefore *replayable* —
two runs of the same seeded workload produce byte-identical alert logs,
exactly like the decision logs they sit beside.

Rule kinds:

* ``burn_rate`` — multi-window SLO burn on a latency histogram.  The
  burn rate is ``(observed bad fraction) / (allowed bad fraction)`` over
  a trailing window; the rule fires only when **both** the long and the
  short window burn above the threshold (the standard fast-burn guard:
  the long window gives confidence, the short window proves the burn is
  still happening).  "Bad" means above ``objective_ms``, resolved
  against histogram bucket bounds — the objective should sit on a bucket
  boundary; anything else is floored to the next bound below.
* ``threshold`` — compare a counter/gauge value against a constant.
* ``absence`` — fire when a metric series is missing from the snapshot,
  or (with ``window_ms``) when a counter has stopped increasing for a
  full window — the "is anything alive" rule.

:func:`samples_from_schedule_log` rebuilds a virtual-clock metrics
timeline from a scheduler decision log (or the equivalent trace
instants via ``analysis.events_from_trace``), sampling the cumulative
registry on a fixed grid so multi-window burn rates have history to
look at even though the scheduler only exports its final snapshot.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

__all__ = [
    "AlertEngine",
    "AlertRule",
    "firing_rules",
    "load_rules",
    "samples_from_schedule_log",
]

_KINDS = ("burn_rate", "threshold", "absence")
_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}

#: JSON keys accepted by :func:`load_rules`, i.e. the rule file format.
_RULE_FIELDS = {
    "name",
    "kind",
    "metric",
    "labels",
    "objective_ms",
    "target",
    "long_window_ms",
    "short_window_ms",
    "burn_threshold",
    "op",
    "value",
    "window_ms",
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; see the module docstring for semantics."""

    name: str
    kind: str
    metric: str
    labels: tuple = ()
    # burn_rate
    objective_ms: float = 250.0
    target: float = 0.95
    long_window_ms: float = 3_600_000.0
    short_window_ms: float = 300_000.0
    burn_threshold: float = 1.0
    # threshold
    op: str = ">"
    value: float = 0.0
    # absence (None = plain series-missing check)
    window_ms: float | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r} (expected one of {_KINDS})")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")
        if self.kind == "burn_rate":
            if not 0.0 < self.target < 1.0:
                raise ValueError("burn_rate target must be in (0, 1)")
            if self.short_window_ms > self.long_window_ms:
                raise ValueError("short window must not exceed the long window")


def load_rules(raw_rules: list) -> tuple[AlertRule, ...]:
    """Build rules from parsed JSON (a list of flat rule dicts)."""
    rules = []
    for i, raw in enumerate(raw_rules):
        if not isinstance(raw, dict):
            raise ValueError(f"rule #{i} is not an object")
        unknown = set(raw) - _RULE_FIELDS
        if unknown:
            raise ValueError(f"rule #{i} has unknown fields: {sorted(unknown)}")
        kwargs = {k: v for k, v in raw.items() if k != "labels"}
        kwargs["labels"] = _label_key(raw.get("labels") or {})
        rules.append(AlertRule(**kwargs))
    names = [r.name for r in rules]
    if len(set(names)) != len(names):
        raise ValueError("duplicate rule names")
    return tuple(rules)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _index_snapshot(snapshot: list[dict]) -> dict:
    return {
        (entry["name"], _label_key(entry.get("labels") or {})): entry
        for entry in snapshot
    }


class AlertEngine:
    """Evaluates a rule set over a timeline of metric snapshots.

    ``samples`` is ``[(t_ms, snapshot), ...]`` in ascending time, each
    snapshot *cumulative* since the start of the run (which is what both
    the registry and the Prometheus exposition give you).  A single
    final snapshot is a valid timeline: with no earlier sample inside
    any window, every window's baseline is the zero state, so the whole
    run is evaluated as one window.
    """

    def __init__(self, rules):
        self.rules = tuple(rules)

    def evaluate(self, samples: list[tuple]) -> list[dict]:
        """Return the transition log (firing/resolved entries only)."""
        timeline = [(float(t), _index_snapshot(snap)) for t, snap in samples]
        if any(b[0] < a[0] for a, b in zip(timeline, timeline[1:])):
            raise ValueError("samples must be in ascending time order")
        state = {rule.name: False for rule in self.rules}
        log: list[dict] = []
        for i, (t, indexed) in enumerate(timeline):
            for rule in self.rules:
                firing, fields = self._eval_rule(rule, timeline, i, t, indexed)
                if firing != state[rule.name]:
                    state[rule.name] = firing
                    log.append(
                        {
                            "t_ms": round(t, 6),
                            "event": "alert_firing" if firing else "alert_resolved",
                            "rule": rule.name,
                            "kind": rule.kind,
                            "metric": rule.metric,
                            **fields,
                        }
                    )
        return log

    # -- per-rule evaluation ------------------------------------------
    def _eval_rule(self, rule, timeline, i, t, indexed):
        entry = indexed.get((rule.metric, rule.labels))
        if rule.kind == "burn_rate":
            long_burn = self._burn(rule, timeline, i, t, entry, rule.long_window_ms)
            short_burn = self._burn(rule, timeline, i, t, entry, rule.short_window_ms)
            firing = (
                long_burn > rule.burn_threshold and short_burn > rule.burn_threshold
            )
            return firing, {
                "burn_long": round(long_burn, 6),
                "burn_short": round(short_burn, 6),
                "objective_ms": rule.objective_ms,
                "target": rule.target,
            }
        if rule.kind == "threshold":
            value = 0.0 if entry is None else float(entry.get("value", 0.0))
            return _OPS[rule.op](value, rule.value), {"value": round(value, 6)}
        # absence
        if entry is None:
            return True, {"reason": "missing"}
        if rule.window_ms is not None and entry["kind"] == "counter":
            baseline = self._baseline(timeline, i, t, rule.window_ms)
            if baseline is not None:
                prev = baseline.get((rule.metric, rule.labels))
                prev_value = 0.0 if prev is None else float(prev.get("value", 0.0))
                if float(entry.get("value", 0.0)) <= prev_value:
                    return True, {"reason": "stale"}
        return False, {}

    def _baseline(self, timeline, i, t, window_ms):
        """Latest sample at or before ``t - window_ms`` (None if none)."""
        cutoff = t - window_ms
        best = None
        for j in range(i):
            if timeline[j][0] <= cutoff:
                best = timeline[j][1]
            else:
                break
        return best

    def _burn(self, rule, timeline, i, t, entry, window_ms):
        if entry is None or entry.get("kind") != "histogram":
            return 0.0
        buckets = list(entry["buckets"])
        counts = list(entry["counts"])
        baseline = self._baseline(timeline, i, t, window_ms)
        if baseline is not None:
            prev = baseline.get((rule.metric, rule.labels))
            if prev is not None and list(prev["buckets"]) == buckets:
                counts = [c - p for c, p in zip(counts, prev["counts"])]
        counts = [max(c, 0) for c in counts]
        # Buckets are upper bounds (inclusive); everything in a bucket
        # whose bound is <= the objective is "good".
        k = bisect_right(buckets, rule.objective_ms)
        good = sum(counts[:k])
        total = sum(counts)
        if total == 0:
            return 0.0
        bad_fraction = (total - good) / total
        allowed = 1.0 - rule.target
        return bad_fraction / allowed if allowed > 0 else 0.0


def firing_rules(log: list[dict]) -> list[str]:
    """Replay a transition log to the set of rules firing at its end."""
    state: dict[str, bool] = {}
    for entry in log:
        state[entry["rule"]] = entry["event"] == "alert_firing"
    return sorted(name for name, firing in state.items() if firing)


# ----------------------------------------------------------------------
# Virtual-clock metric timelines from decision logs
# ----------------------------------------------------------------------
def samples_from_schedule_log(
    events: list[dict], interval_ms: float = 500.0
) -> list[tuple]:
    """Rebuild the scheduler's metric timeline from its decision log.

    Replays the same per-run metric recording ``RequestScheduler.run``
    performs (request counters by status, tier/warmth counters, the
    queue-wait/service/e2e histograms), sampling the cumulative registry
    every ``interval_ms`` of virtual time plus once at the final event.
    Purely a function of the decision log — deterministic, replayable —
    which is what lets alert evaluation on a seeded run be byte-stable.

    Values replayed from the log carry its 3-decimal rounding, so counts
    can differ from the live registry only for observations landing
    within 0.5 µs of a bucket bound.
    """
    from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry

    ordered = sorted(
        (e for e in events if "t_ms" in e), key=lambda e: float(e["t_ms"])
    )
    if not ordered:
        return []
    registry = MetricsRegistry()

    def hist(name):
        return registry.histogram(name, buckets=DEFAULT_LATENCY_BUCKETS_MS)

    def apply(event):
        kind = event.get("event")
        if kind == "complete":
            registry.counter(
                "repro_sched_requests_total", {"status": "completed"}
            ).inc()
            if "tier" in event:
                registry.counter(
                    "repro_sched_tier_served_total", {"tier": str(event["tier"])}
                ).inc()
            if "e2e_ms" in event:
                hist("repro_sched_e2e_ms").observe(float(event["e2e_ms"]))
        elif kind == "dispatch":
            if "warmth" in event:
                registry.counter(
                    "repro_sched_dispatch_total", {"warmth": str(event["warmth"])}
                ).inc()
            if "queue_wait_ms" in event:
                hist("repro_sched_queue_wait_ms").observe(
                    float(event["queue_wait_ms"])
                )
            if "service_ms" in event:
                hist("repro_sched_service_ms").observe(float(event["service_ms"]))
        elif kind == "shed":
            registry.counter("repro_sched_requests_total", {"status": "shed"}).inc()
        elif kind == "reject":
            registry.counter(
                "repro_sched_requests_total", {"status": "rejected"}
            ).inc()

    t_end = float(ordered[-1]["t_ms"])
    samples: list[tuple] = []
    k = 0
    t = 0.0
    while t < t_end:
        while k < len(ordered) and float(ordered[k]["t_ms"]) <= t:
            apply(ordered[k])
            k += 1
        samples.append((t, registry.snapshot()))
        t += interval_ms
    while k < len(ordered):
        apply(ordered[k])
        k += 1
    samples.append((t_end, registry.snapshot()))
    return samples
