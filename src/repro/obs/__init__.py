"""Pipeline-wide observability: tracing, metrics, structured events.

A deliberate *leaf* package — stdlib only, imports nothing from the rest
of ``repro`` — so every layer (render kernels, executor, farm, scheduler)
can depend on it without cycles.

Design contract: observability is a pure side-channel.  Enabling tracing
or metrics must not change a single rendered bit or scheduler decision —
spans are recorded *from* measured or already-decided values, decision
events are teed through log sinks, and the zero-perturbation test suite
(``tests/test_obs_zero_perturbation.py``) enforces it.

Usage::

    from repro.obs import ObsContext

    obs = ObsContext.create()
    with RenderExecutor(num_workers=2, obs=obs) as executor:
        executor.submit(job).result()
    export_trace("trace.json", obs.tracer)      # Perfetto / chrome://tracing
    export_metrics("metrics.prom", obs.metrics) # Prometheus text
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.alerts import AlertEngine, AlertRule, firing_rules, load_rules
from repro.obs.analysis import analyze, critical_path, diff_analyses, load_trace
from repro.obs.events import StructuredEventLog
from repro.obs.exporters import (
    chrome_trace,
    export_html,
    export_metrics,
    export_trace,
    parse_prometheus_snapshot,
    parse_prometheus_text,
    prometheus_text,
    spans_jsonl,
    timeline_html,
    validate_chrome_trace,
)
from repro.obs.health import Watchdog
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    monotonic_ms,
)
from repro.obs.profile import (
    KERNEL_STAGES,
    CompositeObserver,
    MemoryAttributor,
    SpanStackTracker,
    StackSampler,
    attribute_stages,
    collapse_text,
)
from repro.obs.resources import ResourceSampler, resources_from_snapshot
from repro.obs.server import TelemetryServer, parse_listen
from repro.obs.trace import VIRTUAL, WALL, Tracer, TracerStageHook

__all__ = [
    "ObsContext",
    "Tracer",
    "TracerStageHook",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StructuredEventLog",
    "WALL",
    "VIRTUAL",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_BYTE_BUCKETS",
    "chrome_trace",
    "spans_jsonl",
    "prometheus_text",
    "parse_prometheus_text",
    "parse_prometheus_snapshot",
    "validate_chrome_trace",
    "export_trace",
    "export_metrics",
    "export_html",
    "timeline_html",
    "AlertEngine",
    "AlertRule",
    "Watchdog",
    "analyze",
    "critical_path",
    "diff_analyses",
    "firing_rules",
    "load_rules",
    "load_trace",
    "monotonic_ms",
    "KERNEL_STAGES",
    "CompositeObserver",
    "MemoryAttributor",
    "SpanStackTracker",
    "StackSampler",
    "attribute_stages",
    "collapse_text",
    "ResourceSampler",
    "resources_from_snapshot",
    "TelemetryServer",
    "parse_listen",
]


@dataclass
class ObsContext:
    """One tracer + one metrics registry, handed through the pipeline.

    The executor, farm, scheduler and CLIs all accept ``obs=None`` (off,
    zero overhead) or an ``ObsContext``; workers build their own private
    context per process and ship drained records back over the result
    pipe, so a single ``ObsContext`` in the parent ends up holding the
    whole pipeline's trace with per-worker lane attribution.
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def create(cls, origin: str = "main", default_lane: str = "main") -> "ObsContext":
        return cls(tracer=Tracer(origin=origin, default_lane=default_lane))
