"""Structured event log: the schema behind the scheduler's decision log.

One entry per decision event, shaped exactly like the scheduler's
historical ``EventLog`` entries so committed decision-log replays stay
byte-identical::

    {"t_ms": <rounded virtual ms>, "event": <kind>, **fields}

``StructuredEventLog`` adds *sinks* — callables invoked with each entry
as it is emitted — which is how decision events are teed into a tracer
as virtual-clock instants without the log itself changing: sinks see the
same dict that is appended, and emit order is the replay order.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["StructuredEventLog"]


class StructuredEventLog:
    """Append-only log of ``{"t_ms", "event", **fields}`` entries."""

    def __init__(self, sinks: tuple[Callable[[dict], None], ...] = ()):
        self._events: list[dict] = []
        self._sinks: list[Callable[[dict], None]] = list(sinks)

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Tee every future entry into ``sink(entry)`` (pure side-channel)."""
        self._sinks.append(sink)

    def emit(self, t_ms: float, event: str, **fields) -> dict:
        """Record one event at virtual time ``t_ms``; returns the entry."""
        entry = {"t_ms": round(float(t_ms), 6), "event": event, **fields}
        self._events.append(entry)
        for sink in self._sinks:
            sink(entry)
        return entry

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def counts(self) -> dict[str, int]:
        """How many events of each kind, sorted by kind."""
        out: dict[str, int] = {}
        for entry in self._events:
            out[entry["event"]] = out.get(entry["event"], 0) + 1
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._events)
