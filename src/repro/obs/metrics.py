"""Metrics registry: counters, gauges, fixed-bucket histograms.

Recording is a plain attribute increment under the GIL — no lock, no
atomics — which is safe because each process records into its *own*
registry; cross-process aggregation happens explicitly through
``snapshot()`` (a picklable list of dicts) and ``merge()``.

Merges are exact and associative for counters and histograms: bucket
counts and counter values are integers-or-float-sums added elementwise,
so merging worker snapshots in any order (or any grouping) yields the
same registry.  Gauges are last-write-wins by construction — a gauge is
a statement of current state, not a sum — and callers who need
per-worker gauges should label them.

Histogram buckets follow Prometheus conventions: ``le`` upper bounds are
inclusive, and an implicit ``+Inf`` bucket catches the rest, so
``counts`` has ``len(buckets) + 1`` entries.
"""

from __future__ import annotations

import bisect
import time
from typing import Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "monotonic_ms",
]

# Log-ish spacing from sub-millisecond stage costs up to multi-second
# cold dispatches; shared by every *_ms histogram so merges line up.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)

DEFAULT_BYTE_BUCKETS = tuple(float(1 << p) for p in range(10, 31, 2))  # 1 KiB .. 1 GiB


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


def monotonic_ms() -> int:
    """The monotonic millisecond clock gauge samples are stamped with."""
    return time.monotonic_ns() // 1_000_000


class Gauge:
    """Point-in-time value; ``set`` replaces, merge is last-write-wins.

    Every ``set`` stamps ``sample_ms`` from the monotonic clock (integer
    milliseconds), so two scrapes of the same gauge value are
    distinguishable: a live series carries a fresh stamp, a stale one —
    e.g. a worker gauge surviving between runs — keeps the stamp of its
    last real sample.  The stamp travels through ``snapshot()``/
    ``merge()`` and the Prometheus exposition (as the optional sample
    timestamp); pass an explicit ``sample_ms`` to preserve an original
    stamp when relaying a sample.
    """

    __slots__ = ("value", "sample_ms")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.sample_ms: int | None = None

    def set(self, value: float, sample_ms: int | None = None) -> None:
        self.value = float(value)
        self.sample_ms = monotonic_ms() if sample_ms is None else int(sample_ms)


class Histogram:
    """Fixed-bucket histogram with inclusive ``le`` bounds plus ``+Inf``."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS):
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram buckets must be sorted and unique: {buckets!r}")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        total, out = 0, []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in its bucket.

        The standard Prometheus ``histogram_quantile`` estimator:
        observations are assumed uniform within a bucket, so the
        quantile is placed ``(rank - cumulative_below) / bucket_count``
        of the way between the bucket's bounds (the first bucket's
        lower bound is 0 — all metrics here are non-negative).  The
        estimate is exact to within the containing bucket's width,
        which is what the reconciliation tests assert against the exact
        percentiles in scheduler reports.  Quantiles landing in the
        ``+Inf`` bucket clamp to the highest finite bound; an empty
        histogram returns ``nan``.
        """
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        below = 0
        for i, c in enumerate(self.counts):
            if c and below + c >= rank:
                if i >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1] if self.buckets else float("nan")
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                return lo + (hi - lo) * ((rank - below) / c)
            below += c
        return self.buckets[-1] if self.buckets else float("nan")


def _label_key(labels: dict | None) -> tuple:
    return tuple(sorted(labels.items())) if labels else ()


class MetricsRegistry:
    """Get-or-create series keyed by ``(name, labels)``; snapshot/merge."""

    def __init__(self) -> None:
        self._series: dict[tuple, object] = {}

    # -- recording ---------------------------------------------------------

    def _get(self, name: str, labels: dict | None, factory, kind: str):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = factory()
        elif series.kind != kind:
            raise ValueError(f"metric {name!r} already registered as {series.kind}")
        return series

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(name, labels, Counter, "counter")

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(name, labels, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        labels: dict | None = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._get(name, labels, lambda: Histogram(buckets), "histogram")

    # -- reading -----------------------------------------------------------

    def value(self, name: str, labels: dict | None = None):
        """The current value of a counter/gauge, or None if unrecorded."""
        series = self._series.get((name, _label_key(labels)))
        return None if series is None else series.value

    def labeled_values(self, name: str) -> list[tuple[dict, int | float]]:
        """Every ``(labels, value)`` of a counter/gauge family, sorted."""
        out = []
        for (series_name, label_key), series in sorted(self._series.items()):
            if series_name == name and series.kind in ("counter", "gauge"):
                out.append((dict(label_key), series.value))
        return out

    def series(self) -> list[tuple[str, dict, object]]:
        """Every ``(name, labels, series)`` sorted by name then labels."""
        return [
            (name, dict(label_key), series)
            for (name, label_key), series in sorted(self._series.items())
        ]

    def __len__(self) -> int:
        return len(self._series)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """A picklable/JSON-safe dump of every series (for merge/export)."""
        out = []
        for name, labels, series in self.series():
            entry = {"kind": series.kind, "name": name, "labels": labels}
            if series.kind == "histogram":
                entry.update(
                    buckets=list(series.buckets),
                    counts=list(series.counts),
                    sum=series.sum,
                    count=series.count,
                )
            else:
                entry["value"] = series.value
                if series.kind == "gauge" and series.sample_ms is not None:
                    entry["sample_ms"] = series.sample_ms
            out.append(entry)
        return out

    def merge(self, snapshot: list[dict]) -> None:
        """Fold a snapshot in: counters add, gauges replace, histograms add.

        Histogram merges require identical bucket bounds (everything in
        this codebase shares the fixed default buckets per metric name);
        a mismatch raises rather than silently mis-binning.
        """
        for entry in snapshot:
            kind, name, labels = entry["kind"], entry["name"], entry["labels"]
            if kind == "counter":
                self.counter(name, labels).inc(entry["value"])
            elif kind == "gauge":
                # Carry the original sample stamp through the merge (a
                # legacy stamp-less entry is stamped at merge time).
                self.gauge(name, labels).set(
                    entry["value"], sample_ms=entry.get("sample_ms")
                )
            elif kind == "histogram":
                hist = self.histogram(name, labels, buckets=entry["buckets"])
                if list(hist.buckets) != [float(b) for b in entry["buckets"]]:
                    raise ValueError(
                        f"bucket mismatch merging histogram {name!r}: "
                        f"{list(hist.buckets)} vs {entry['buckets']}"
                    )
                for i, c in enumerate(entry["counts"]):
                    hist.counts[i] += c
                hist.sum += entry["sum"]
                hist.count += entry["count"]
            else:
                raise ValueError(f"unknown series kind {kind!r}")
