"""In-process telemetry HTTP server: scrape the pipeline while it runs.

A stdlib ``ThreadingHTTPServer`` embedded in the serve/sched CLIs via
``--listen HOST:PORT``.  It reads the *live* observability state — no
files, no export step — and serves:

* ``GET /metrics`` — Prometheus text exposition of the current merged
  registry (parent + latest per-worker snapshots), plus the serving
  process's own CPU%/RSS sampled fresh on every scrape.
* ``GET /health`` — the executor/scheduler health snapshot as JSON
  (worker states, heartbeats, per-worker resources).
* ``GET /trace.jsonl?cursor=N`` — incremental span tail: every span
  recorded since the client's cursor, one JSON object per line, with the
  next cursor in the ``X-Trace-Cursor`` response header.  Pass the
  header back as ``cursor`` to tail the trace without re-downloading.
* ``GET /profile?seconds=N`` — an on-demand collapsed-stack CPU capture
  (``&format=json`` adds stage attribution and memory stats).
* ``GET /`` — the live trace rendered as the self-contained timeline
  HTML.

Zero-perturbation is load-bearing: every endpoint *reads* — snapshot
copies of spans and metrics, ``/proc`` files, stack samples — and the
request counters land in a server-private registry, so a scraper
hammering every endpoint mid-run cannot change a rendered bit or a
scheduler decision (pinned by ``tests/test_obs_zero_perturbation.py``).

Handlers run on daemon threads; ``stop()`` shuts the listener down
without waiting on stragglers.  The server binds eagerly in ``start()``
so ``--listen 127.0.0.1:0`` reports the real ephemeral port before any
work begins.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.exporters import prometheus_text, timeline_html
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import StackSampler, attribute_stages, collapse_text
from repro.obs.resources import ResourceSampler

__all__ = ["TelemetryServer", "parse_listen"]

#: Upper bound on one ``/profile`` capture; long captures belong in the
#: continuous sampler, not a request handler.
MAX_PROFILE_SECONDS = 30.0

#: Self-process gauges refreshed on every ``/metrics`` scrape.
PROCESS_CPU_GAUGE = "repro_process_cpu_percent"
PROCESS_RSS_GAUGE = "repro_process_rss_bytes"
#: Per-endpoint request counter (server-private registry).
REQUESTS_COUNTER = "repro_http_requests_total"


def parse_listen(value: str) -> tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)``; empty host means loopback.

    Port 0 is allowed (bind ephemeral; the server reports the real port
    after ``start()``).
    """
    host, sep, port = value.rpartition(":")
    if not sep:
        raise ValueError(f"--listen wants HOST:PORT, got {value!r}")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"--listen port must be an integer, got {port!r}") from None
    if not 0 <= port_num <= 65535:
        raise ValueError(f"--listen port out of range: {port_num}")
    return host or "127.0.0.1", port_num


class _Handler(BaseHTTPRequestHandler):
    # Tail of the default protocol string; keep-alive with a thread per
    # connection is fine at scrape concurrency.
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        pass  # telemetry must not chat on the serving process's stderr

    # -- plumbing ----------------------------------------------------------

    @property
    def telemetry(self) -> "TelemetryServer":
        return self.server.telemetry

    def _send(self, code: int, body: bytes, content_type: str, headers: dict | None = None):
        self.telemetry._count_request(self.path, code)
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict, headers: dict | None = None):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(code, body, "application/json", headers)

    def _bad_request(self, message: str):
        self._send_json(400, {"error": message})

    # -- endpoints ---------------------------------------------------------

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/metrics":
                self._get_metrics()
            elif url.path == "/health":
                self._get_health()
            elif url.path == "/trace.jsonl":
                self._get_trace(query)
            elif url.path == "/profile":
                self._get_profile(query)
            elif url.path == "/":
                self._get_timeline()
            else:
                self._send_json(404, {"error": f"no such endpoint: {url.path}"})
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to clean up
        except Exception as exc:  # a broken read must not kill the thread
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def _get_metrics(self):
        text = self.telemetry.render_metrics()
        self._send(200, text.encode(), "text/plain; version=0.0.4; charset=utf-8")

    def _get_health(self):
        self._send_json(200, self.telemetry.render_health())

    def _get_trace(self, query: dict):
        raw = query.get("cursor", ["0"])[0]
        try:
            cursor = int(raw)
        except ValueError:
            return self._bad_request(f"cursor must be an integer, got {raw!r}")
        if cursor < 0:
            return self._bad_request(f"cursor must be >= 0, got {cursor}")
        spans, next_cursor = self.telemetry.tracer.spans_since(cursor)
        body = "".join(json.dumps(span, sort_keys=True) + "\n" for span in spans)
        self._send(
            200,
            body.encode(),
            "application/jsonl",
            {"X-Trace-Cursor": str(next_cursor)},
        )

    def _get_profile(self, query: dict):
        raw = query.get("seconds", ["1.0"])[0]
        try:
            seconds = float(raw)
        except ValueError:
            return self._bad_request(f"seconds must be a number, got {raw!r}")
        if not 0 < seconds <= MAX_PROFILE_SECONDS:
            return self._bad_request(
                f"seconds must be in (0, {MAX_PROFILE_SECONDS:g}], got {seconds:g}"
            )
        # This handler thread spends the whole capture parked in a sleep
        # loop — exclude it from its own profile.
        sampler = self.telemetry.sampler
        ident = threading.get_ident()
        sampler.ignored.add(ident)
        try:
            counts = sampler.capture(seconds)
        finally:
            sampler.ignored.discard(ident)
        if query.get("format", [""])[0] == "json":
            payload = {
                "attribution": attribute_stages(counts),
                "collapsed": collapse_text(counts),
                "seconds": seconds,
            }
            memory = self.telemetry.memory
            if memory is not None:
                payload["memory"] = memory.stats()
            return self._send_json(200, payload)
        self._send(200, collapse_text(counts).encode(), "text/plain; charset=utf-8")

    def _get_timeline(self):
        html = timeline_html(self.telemetry.tracer.spans, title="repro live timeline")
        self._send(200, html.encode(), "text/html; charset=utf-8")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class TelemetryServer:
    """Owns the listener plus the read-only views the endpoints serve.

    ``metrics_fn`` returns the registry to expose (called per scrape —
    pass the executor's live ``collect_metrics`` or the scheduler's
    ``live_metrics``); ``health_fn`` returns the health snapshot dict.
    ``sampler``/``memory`` are the CPU sampler and memory attributor to
    expose on ``/profile`` — when no sampler is supplied, one without
    span attribution is created so ``/profile`` always works.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tracer,
        metrics_fn=None,
        health_fn=None,
        sampler: StackSampler | None = None,
        memory=None,
    ):
        self.host = host
        self.port = port
        self.tracer = tracer
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn
        self.sampler = sampler if sampler is not None else StackSampler()
        self.memory = memory
        self._registry = MetricsRegistry()  # server-private: request counters
        self._resources = ResourceSampler()
        self._lock = threading.Lock()
        self._httpd: _Server | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        self._httpd = _Server((self.host, self.port), _Handler)
        self._httpd.telemetry = self
        self.port = self._httpd.server_address[1]  # resolve port 0
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-server",
            daemon=True,
        )
        self._thread.start()
        # The accept loop is pure infrastructure; keep it out of profiles.
        if self._thread.ident is not None:
            self.sampler.ignored.add(self._thread.ident)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- endpoint backends (also the test seam) ----------------------------

    def _count_request(self, path: str, code: int) -> None:
        endpoint = urlsplit(path).path
        with self._lock:
            self._registry.counter(
                REQUESTS_COUNTER, {"endpoint": endpoint, "code": str(code)}
            ).inc()

    def render_metrics(self) -> str:
        """The merged exposition one ``/metrics`` scrape returns."""
        merged = MetricsRegistry()
        if self.metrics_fn is not None:
            live = self.metrics_fn()
            if live is not None:
                merged.merge(live.snapshot())
        with self._lock:
            sample = self._resources.sample(os.getpid())
            if sample is not None:
                if sample["cpu_percent"] is not None:
                    self._registry.gauge(PROCESS_CPU_GAUGE).set(sample["cpu_percent"])
                self._registry.gauge(PROCESS_RSS_GAUGE).set(sample["rss_bytes"])
            merged.merge(self._registry.snapshot())
        return prometheus_text(merged)

    def render_health(self) -> dict:
        payload = {"listen": self.address, "profiler_running": self.sampler.running}
        if self.health_fn is not None:
            snapshot = self.health_fn()
            if snapshot is not None:
                payload["health"] = snapshot
        return payload
